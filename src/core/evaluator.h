// Deviation and utility evaluation (Definitions 5-6) over a fact catalog.
#ifndef VQ_CORE_EVALUATOR_H_
#define VQ_CORE_EVALUATOR_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/expectation.h"
#include "facts/catalog.h"
#include "facts/instance.h"

namespace vq {

/// Work counters exposed by the algorithms (used by the Figure 3/4 benches
/// and the pruning ablation).
struct PerfCounters {
  uint64_t join_rows = 0;      ///< row visits in utility-gain joins
  uint64_t bound_rows = 0;     ///< row visits in upper-bound group-bys
  uint64_t groups_joined = 0;  ///< fact groups whose utilities were computed
  uint64_t groups_pruned = 0;  ///< fact groups eliminated by bounds
  uint64_t leaf_evals = 0;     ///< complete speeches evaluated exactly
  uint64_t nodes_expanded = 0; ///< search-tree expansions (exact algorithm)
  uint64_t pruned_by_bound = 0;  ///< subtrees cut by the utility bound

  /// THE field list: the one place that enumerates every counter, in
  /// serialization order. Add()/Merged() and the bench JSON/table writers
  /// all iterate it (via ForEachField), so a new counter added here is
  /// merged and serialized everywhere without touching another call site.
  static constexpr size_t kNumFields = 7;
  static const std::array<uint64_t PerfCounters::*, kNumFields> kFields;
  static const std::array<const char*, kNumFields> kFieldNames;

  /// Invokes fn(name, value) for every counter, in kFields order.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
    for (size_t i = 0; i < kNumFields; ++i) fn(kFieldNames[i], this->*kFields[i]);
  }

  /// Plain (non-atomic) accumulate. NOT safe for concurrent use: callers
  /// merging counters produced on multiple threads must serialize the merge
  /// (EngineHost does so under its perf mutex) or keep per-thread counters
  /// and combine after joining.
  void Add(const PerfCounters& other);

  /// Value-returning merge: `*this` plus `other`, leaving both operands
  /// untouched. The footgun-free spelling for cross-thread aggregation
  /// sites (`shared = shared.Merged(per_thread)` under the owner's mutex
  /// reads as the copy-merge-publish it is, where a bare Add() invites
  /// calling it on a shared object from runner threads).
  PerfCounters Merged(const PerfCounters& other) const;
};

/// \brief Evaluates deviation/utility of fact sets for one instance.
///
/// All computations are weighted by the instance's row multiplicities, which
/// is exactly equivalent to iterating the original rows.
///
/// Since the indexed-scan refactor the speech paths are bitset-vectorized:
/// the catalog's per-fact scope bitsets are ORed into a per-word cover mask,
/// whole 64-row blocks no speech fact touches reduce to one precomputed
/// weighted prior-deviation sum, and only covered rows resolve conflicting
/// facts. The initialization join iterates each fact's CSR scope rows.
/// PerfCounters are charged from the scope popcounts, which sum to exactly
/// the per-group row totals the seed implementation charged.
///
/// Since the SIMD-kernel refactor those block loops run through the
/// runtime-dispatched kernel table (util/simd.h): the cover mask comes from
/// one fused OR+popcount pass, uncovered rows inside partially covered
/// blocks reduce with the masked block-sum kernel over the padded
/// prior-deviation array, and the initialization join streams the catalog's
/// SoA block-delta tables (ScopeDevs/ScopeWeights) through the positive-gain
/// gather kernel. Under kClosest, rows covered by exactly one speech fact
/// additionally resolve branchlessly through the masked single-fact kernel
/// (their contribution is min(weighted fact deviation, weighted prior
/// deviation)); only rows covered by SEVERAL facts still walk the
/// row-at-a-time ExpectedValue conflict loop. Results match the *Reference paths to relative 1e-12 (the
/// kernels reassociate sums; the forced-scalar table is bit-identical), and
/// counter totals are unchanged.
class Evaluator {
 public:
  Evaluator(const SummaryInstance* instance, const FactCatalog* catalog);

  const SummaryInstance& instance() const { return *instance_; }
  const FactCatalog& catalog() const { return *catalog_; }

  /// D(empty): weighted deviation between prior and actual values.
  double BaseError() const { return base_error_; }

  /// D(F): accumulated deviation for a speech under `model`.
  double Error(std::span<const FactId> speech,
               ConflictModel model = ConflictModel::kClosest) const;

  /// U(F) = D(empty) - D(F).
  double Utility(std::span<const FactId> speech,
                 ConflictModel model = ConflictModel::kClosest) const;

  /// Per-row expected values after listening to `speech`.
  std::vector<double> RowExpectations(std::span<const FactId> speech,
                                      ConflictModel model) const;

  /// Single-fact utility for every catalog fact (the initialization join of
  /// Algorithm 1, Line 6). Counters are charged to `counters` if non-null.
  std::vector<double> SingleFactUtilities(PerfCounters* counters = nullptr) const;

  /// Row-at-a-time reference implementations (the seed code paths), kept so
  /// the golden equivalence tests and bench/scan_throughput.cpp can compare
  /// the vectorized paths against them -- and used as the execution path
  /// when the catalog capped its scope bitsets (FactCatalog::HasScopeBits).
  double ErrorReference(std::span<const FactId> speech,
                        ConflictModel model = ConflictModel::kClosest) const;
  std::vector<double> RowExpectationsReference(std::span<const FactId> speech,
                                               ConflictModel model) const;
  std::vector<double> SingleFactUtilitiesReference(
      PerfCounters* counters = nullptr) const;

  /// |prior - target[r]| per merged row, precomputed once (GreedyState
  /// seeds its per-row deviation column from this instead of re-deriving).
  std::span<const double> PriorDeviations() const { return prior_dev_; }

 private:
  const SummaryInstance* instance_;
  const FactCatalog* catalog_;
  double base_error_ = 0.0;
  /// |prior - target[r]| and its weighted form, precomputed once.
  /// prior_dev_weighted_ is zero-padded to a whole number of 64-row blocks:
  /// the masked block-sum kernel loads full vector lanes, so every block it
  /// touches must be readable end to end (padding lanes carry 0.0 and the
  /// cover masks never select them).
  std::vector<double> prior_dev_;
  std::vector<double> prior_dev_weighted_;
  /// Block-padded copies of the instance's target and weight columns (same
  /// padding contract), the inputs of the masked single-fact kernel: under
  /// kClosest, rows covered by exactly ONE speech fact resolve branchlessly
  /// as min(weighted fact deviation, weighted prior deviation) -- see
  /// Error(). Rows covered by several facts still go through ExpectedValue.
  std::vector<double> target_padded_;
  std::vector<double> weight_padded_;
  /// Weighted prior deviation summed per 64-row block: the O(1) reduction
  /// for blocks no speech fact covers.
  std::vector<double> prior_block_weighted_;
};

/// \brief Mutable greedy state: per-row current deviation given the facts
/// chosen so far (the E column Algorithm 2 recomputes in Line 11).
class GreedyState {
 public:
  explicit GreedyState(const Evaluator& evaluator);

  /// Current accumulated (weighted) deviation.
  double CurrentError() const { return current_error_; }

  /// Utility gains of all facts in `group_index` given the current state;
  /// accumulated into `gains` (indexed by FactId). Returns the best
  /// (gain, fact) in the group. This is the join + Gamma of Line 7.
  std::pair<double, FactId> AccumulateGroupGains(uint32_t group_index,
                                                 std::vector<double>* gains,
                                                 PerfCounters* counters) const;

  /// Upper bound on the utility gain of any fact in `group_index`: the
  /// maximum, over the group's facts, of the summed current deviation within
  /// the fact's scope (Algorithm 3, Line 15 -- a group-by without a join).
  double GroupUtilityBound(uint32_t group_index, PerfCounters* counters) const;

  /// Applies a chosen fact: per-row deviation becomes the minimum of the
  /// current deviation and the fact's deviation (Line 11 of Algorithm 2).
  void ApplyFact(FactId id);

 private:
  const Evaluator* evaluator_;
  std::vector<double> row_deviation_;  ///< unweighted |E - v| per merged row
  double current_error_ = 0.0;
};

}  // namespace vq

#endif  // VQ_CORE_EVALUATOR_H_
