// Common result type for all summarization algorithms.
#ifndef VQ_CORE_SUMMARY_H_
#define VQ_CORE_SUMMARY_H_

#include <vector>

#include "core/evaluator.h"
#include "facts/catalog.h"

namespace vq {

/// \brief Output of a summarization algorithm: the chosen facts and their
/// exact utility under the paper's model.
struct SummaryResult {
  std::vector<FactId> facts;
  double utility = 0.0;     ///< U(F) = D(empty) - D(F)
  double error = 0.0;       ///< D(F)
  double base_error = 0.0;  ///< D(empty)
  double elapsed_seconds = 0.0;
  bool timed_out = false;
  PerfCounters counters;

  /// Utility scaled to [0, 1] by the base error (the paper's Figure 3
  /// "Utility (scaled)" normalizes per problem instance).
  double ScaledUtility() const {
    return base_error > 0.0 ? utility / base_error : 0.0;
  }
};

}  // namespace vq

#endif  // VQ_CORE_SUMMARY_H_
