#include "core/evaluator.h"

#include <cassert>
#include <cmath>

namespace vq {

void PerfCounters::Add(const PerfCounters& other) {
  join_rows += other.join_rows;
  bound_rows += other.bound_rows;
  groups_joined += other.groups_joined;
  groups_pruned += other.groups_pruned;
  leaf_evals += other.leaf_evals;
  nodes_expanded += other.nodes_expanded;
  pruned_by_bound += other.pruned_by_bound;
}

Evaluator::Evaluator(const SummaryInstance* instance, const FactCatalog* catalog)
    : instance_(instance), catalog_(catalog) {
  base_error_ = instance_->BaseError();
}

double Evaluator::Error(std::span<const FactId> speech, ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  double error = 0.0;
  std::vector<double> relevant;
  std::vector<double> all_values;
  all_values.reserve(speech.size());
  for (FactId id : speech) all_values.push_back(catalog_->fact(id).value);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    relevant.clear();
    for (FactId id : speech) {
      if (catalog_->RowInScope(r, id)) relevant.push_back(catalog_->fact(id).value);
    }
    double expected =
        ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
    error += std::fabs(expected - inst.target[r]) * inst.weight[r];
  }
  return error;
}

double Evaluator::Utility(std::span<const FactId> speech, ConflictModel model) const {
  return base_error_ - Error(speech, model);
}

std::vector<double> Evaluator::RowExpectations(std::span<const FactId> speech,
                                               ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> out(inst.num_rows, inst.prior);
  std::vector<double> relevant;
  std::vector<double> all_values;
  for (FactId id : speech) all_values.push_back(catalog_->fact(id).value);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    relevant.clear();
    for (FactId id : speech) {
      if (catalog_->RowInScope(r, id)) relevant.push_back(catalog_->fact(id).value);
    }
    out[r] = ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
  }
  return out;
}

std::vector<double> Evaluator::SingleFactUtilities(PerfCounters* counters) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> utilities(catalog_->NumFacts(), 0.0);
  for (uint32_t g = 0; g < catalog_->NumGroups(); ++g) {
    const FactGroup& group = catalog_->group(g);
    for (size_t r = 0; r < inst.num_rows; ++r) {
      FactId id = group.row_fact[r];
      double prior_dev = std::fabs(inst.prior - inst.target[r]);
      double fact_dev = std::fabs(catalog_->fact(id).value - inst.target[r]);
      double gain = prior_dev - fact_dev;
      if (gain > 0.0) utilities[id] += gain * inst.weight[r];
    }
    if (counters != nullptr) {
      counters->join_rows += inst.num_rows;
      ++counters->groups_joined;
    }
  }
  return utilities;
}

GreedyState::GreedyState(const Evaluator& evaluator) : evaluator_(&evaluator) {
  const SummaryInstance& inst = evaluator.instance();
  row_deviation_.resize(inst.num_rows);
  current_error_ = 0.0;
  for (size_t r = 0; r < inst.num_rows; ++r) {
    row_deviation_[r] = std::fabs(inst.prior - inst.target[r]);
    current_error_ += row_deviation_[r] * inst.weight[r];
  }
}

std::pair<double, FactId> GreedyState::AccumulateGroupGains(
    uint32_t group_index, std::vector<double>* gains, PerfCounters* counters) const {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const FactGroup& group = catalog.group(group_index);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    FactId id = group.row_fact[r];
    double fact_dev = std::fabs(catalog.fact(id).value - inst.target[r]);
    double gain = row_deviation_[r] - fact_dev;
    if (gain > 0.0) (*gains)[id] += gain * inst.weight[r];
  }
  if (counters != nullptr) {
    counters->join_rows += inst.num_rows;
    ++counters->groups_joined;
  }
  double best_gain = -1.0;
  FactId best_fact = kNoFact;
  for (uint32_t i = 0; i < group.num_facts; ++i) {
    FactId id = group.first_fact + i;
    if ((*gains)[id] > best_gain) {
      best_gain = (*gains)[id];
      best_fact = id;
    }
  }
  return {best_gain, best_fact};
}

double GreedyState::GroupUtilityBound(uint32_t group_index,
                                      PerfCounters* counters) const {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const FactGroup& group = catalog.group(group_index);
  // Adding a fact can at most zero out the current deviation within its
  // scope, so sum(current deviation within scope) bounds the gain.
  std::vector<double> scope_error(group.num_facts, 0.0);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    FactId id = group.row_fact[r];
    scope_error[id - group.first_fact] += row_deviation_[r] * inst.weight[r];
  }
  if (counters != nullptr) counters->bound_rows += inst.num_rows;
  double bound = 0.0;
  for (double e : scope_error) bound = std::max(bound, e);
  return bound;
}

void GreedyState::ApplyFact(FactId id) {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const Fact& fact = catalog.fact(id);
  const FactGroup& group = catalog.group(fact.group);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    if (group.row_fact[r] != id) continue;
    double fact_dev = std::fabs(fact.value - inst.target[r]);
    if (fact_dev < row_deviation_[r]) {
      current_error_ -= (row_deviation_[r] - fact_dev) * inst.weight[r];
      row_deviation_[r] = fact_dev;
    }
  }
}

}  // namespace vq
