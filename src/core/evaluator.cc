#include "core/evaluator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "util/simd.h"
#include "util/small_vector.h"

namespace vq {

namespace {
/// Inline scratch capacity for speech-sized buffers: speeches are capped at
/// m = 3 facts in every paper configuration, so 8 keeps the exact search's
/// per-leaf Error() calls allocation-free with room to spare.
constexpr size_t kInlineSpeech = 8;
/// Inline capacity for the per-word cover mask (64-row blocks): 256 words =
/// 16384 rows on the stack (2 KiB), past which the scratch spills once.
constexpr size_t kInlineWords = 256;
}  // namespace

const std::array<uint64_t PerfCounters::*, PerfCounters::kNumFields>
    PerfCounters::kFields = {
        &PerfCounters::join_rows,      &PerfCounters::bound_rows,
        &PerfCounters::groups_joined,  &PerfCounters::groups_pruned,
        &PerfCounters::leaf_evals,     &PerfCounters::nodes_expanded,
        &PerfCounters::pruned_by_bound};

const std::array<const char*, PerfCounters::kNumFields>
    PerfCounters::kFieldNames = {"join_rows",     "bound_rows",
                                 "groups_joined", "groups_pruned",
                                 "leaf_evals",    "nodes_expanded",
                                 "pruned_by_bound"};

void PerfCounters::Add(const PerfCounters& other) {
  for (auto field : kFields) this->*field += other.*field;
}

PerfCounters PerfCounters::Merged(const PerfCounters& other) const {
  PerfCounters out = *this;
  out.Add(other);
  return out;
}

Evaluator::Evaluator(const SummaryInstance* instance, const FactCatalog* catalog)
    : instance_(instance), catalog_(catalog) {
  base_error_ = instance_->BaseError();
  const SummaryInstance& inst = *instance_;
  size_t words = (inst.num_rows + 63) / 64;
  prior_dev_.resize(inst.num_rows);
  // Zero-padded to whole blocks for the masked block-sum and single-fact
  // kernels (see header).
  prior_dev_weighted_.assign(words * 64, 0.0);
  target_padded_.assign(words * 64, 0.0);
  weight_padded_.assign(words * 64, 0.0);
  prior_block_weighted_.assign(words, 0.0);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    prior_dev_[r] = std::fabs(inst.prior - inst.target[r]);
    prior_dev_weighted_[r] = prior_dev_[r] * inst.weight[r];
    target_padded_[r] = inst.target[r];
    weight_padded_[r] = inst.weight[r];
    prior_block_weighted_[r >> 6] += prior_dev_weighted_[r];
  }
}

double Evaluator::Error(std::span<const FactId> speech, ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  if (speech.empty()) return base_error_;
  if (!catalog_->HasScopeBits()) return ErrorReference(speech, model);

  // Word-at-a-time over the speech facts' scope bitsets: one fused
  // OR+popcount kernel pass builds the cover mask, uncovered 64-row blocks
  // reduce to one precomputed sum, uncovered rows inside covered blocks
  // reduce with the masked block-sum kernel, and only covered rows resolve
  // conflicts through the same ExpectedValue as the reference path. All
  // scratch lives in stack-inline buffers: this runs once per exact-search
  // leaf and once per served speech, so it must not allocate.
  const simd::Kernels& kernels = simd::Active();
  size_t words = catalog_->ScopeWords();
  SmallVector<const uint64_t*, kInlineSpeech> bits;
  SmallVector<double, kInlineSpeech> all_values;
  for (FactId id : speech) {
    bits.push_back(catalog_->ScopeBits(id).data());
    all_values.push_back(catalog_->fact(id).value);
  }
  SmallVector<uint64_t, kInlineWords> covered(words);
  uint64_t covered_rows =
      kernels.or_popcount(bits.data(), bits.size(), words, covered.data());
  // A speech whose facts cover no row leaves every expectation at the
  // prior: the fused popcount answers that without touching a block.
  if (covered_rows == 0) return base_error_;

  SmallVector<double, kInlineSpeech> relevant;
  std::span<const double> all_span(all_values.data(), all_values.size());
  double error = 0.0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t cover = covered[w];
    if (cover == 0) {
      error += prior_block_weighted_[w];
      continue;
    }
    size_t base = w << 6;
    // Uncovered rows of a partially covered block: one masked kernel sum.
    // Bits past num_rows select only the array's zero padding.
    error += kernels.masked_sum64(prior_dev_weighted_.data() + base, ~cover);
    // Under kClosest (the optimization model, so the exact search's leaf
    // path), rows covered by exactly ONE fact need no conflict resolution:
    // the listener picks that fact's value or the prior, whichever is
    // closer, so the row contributes min(weighted fact deviation, weighted
    // prior deviation) -- one branchless masked kernel call per (fact,
    // word). The incremental OR below separates those rows from the
    // multi-fact ones, which keep the row-at-a-time ExpectedValue loop.
    if (model == ConflictModel::kClosest && bits.size() > 1) {
      uint64_t acc = 0;
      uint64_t multi = 0;
      for (size_t f = 0; f < bits.size(); ++f) {
        multi |= acc & bits[f][w];
        acc |= bits[f][w];
      }
      uint64_t single = cover & ~multi;
      for (size_t f = 0; f < bits.size() && single != 0; ++f) {
        uint64_t mine = bits[f][w] & single;
        if (mine == 0) continue;
        single &= ~mine;
        error += kernels.masked_single_fact(
            all_values[f], target_padded_.data() + base,
            weight_padded_.data() + base, prior_dev_weighted_.data() + base,
            mine);
      }
      cover = multi;
    } else if (model == ConflictModel::kClosest && bits.size() == 1) {
      // A one-fact speech: every covered row is single-covered.
      error += kernels.masked_single_fact(
          all_values[0], target_padded_.data() + base,
          weight_padded_.data() + base, prior_dev_weighted_.data() + base,
          cover);
      continue;
    }
    // Covered rows resolve conflicting facts row by row (semantic core).
    while (cover != 0) {
      size_t r = base + static_cast<size_t>(std::countr_zero(cover));
      cover &= cover - 1;
      uint64_t bit = uint64_t{1} << (r - base);
      relevant.clear();
      for (size_t f = 0; f < bits.size(); ++f) {
        if (bits[f][w] & bit) relevant.push_back(all_values[f]);
      }
      double expected =
          ExpectedValue(model, {relevant.data(), relevant.size()}, all_span,
                        inst.prior, inst.target[r]);
      error += std::fabs(expected - inst.target[r]) * inst.weight[r];
    }
  }
  return error;
}

double Evaluator::ErrorReference(std::span<const FactId> speech,
                                 ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  double error = 0.0;
  std::vector<double> relevant;
  std::vector<double> all_values;
  all_values.reserve(speech.size());
  for (FactId id : speech) all_values.push_back(catalog_->fact(id).value);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    relevant.clear();
    for (FactId id : speech) {
      if (catalog_->RowInScope(r, id)) relevant.push_back(catalog_->fact(id).value);
    }
    double expected =
        ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
    error += std::fabs(expected - inst.target[r]) * inst.weight[r];
  }
  return error;
}

double Evaluator::Utility(std::span<const FactId> speech, ConflictModel model) const {
  return base_error_ - Error(speech, model);
}

std::vector<double> Evaluator::RowExpectationsReference(
    std::span<const FactId> speech, ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> out(inst.num_rows, inst.prior);
  std::vector<double> relevant;
  std::vector<double> all_values;
  for (FactId id : speech) all_values.push_back(catalog_->fact(id).value);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    relevant.clear();
    for (FactId id : speech) {
      if (catalog_->RowInScope(r, id)) relevant.push_back(catalog_->fact(id).value);
    }
    out[r] = ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
  }
  return out;
}

std::vector<double> Evaluator::RowExpectations(std::span<const FactId> speech,
                                               ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> out(inst.num_rows, inst.prior);
  if (speech.empty()) return out;
  if (!catalog_->HasScopeBits()) return RowExpectationsReference(speech, model);
  const simd::Kernels& kernels = simd::Active();
  size_t words = catalog_->ScopeWords();
  SmallVector<const uint64_t*, kInlineSpeech> bits;
  SmallVector<double, kInlineSpeech> all_values;
  for (FactId id : speech) {
    bits.push_back(catalog_->ScopeBits(id).data());
    all_values.push_back(catalog_->fact(id).value);
  }
  SmallVector<uint64_t, kInlineWords> covered(words);
  uint64_t covered_rows =
      kernels.or_popcount(bits.data(), bits.size(), words, covered.data());
  if (covered_rows == 0) return out;  // nothing in scope: all rows keep the prior
  SmallVector<double, kInlineSpeech> relevant;
  std::span<const double> all_span(all_values.data(), all_values.size());
  for (size_t w = 0; w < words; ++w) {
    uint64_t cover = covered[w];
    // Uncovered rows keep the prior they were initialized with.
    size_t base = w << 6;
    while (cover != 0) {
      size_t r = base + static_cast<size_t>(std::countr_zero(cover));
      cover &= cover - 1;
      uint64_t bit = uint64_t{1} << (r - base);
      relevant.clear();
      for (size_t f = 0; f < bits.size(); ++f) {
        if (bits[f][w] & bit) relevant.push_back(all_values[f]);
      }
      out[r] = ExpectedValue(model, {relevant.data(), relevant.size()}, all_span,
                             inst.prior, inst.target[r]);
    }
  }
  return out;
}

std::vector<double> Evaluator::SingleFactUtilities(PerfCounters* counters) const {
  // The initialization join of Algorithm 1, Line 6, as pure kernel work: per
  // fact, stream the catalog's SoA block-delta tables -- |value - target|,
  // row weight AND the pre-gathered prior deviation, all in CSR order -- so
  // the reduction is dense with no gather at all.
  const simd::Kernels& kernels = simd::Active();
  std::vector<double> utilities(catalog_->NumFacts(), 0.0);
  for (uint32_t g = 0; g < catalog_->NumGroups(); ++g) {
    const FactGroup& group = catalog_->group(g);
    for (uint32_t i = 0; i < group.num_facts; ++i) {
      FactId id = group.first_fact + i;
      std::span<const uint32_t> scope = catalog_->ScopeRows(id);
      utilities[id] = kernels.positive_gain(
          catalog_->ScopePriorDevs(id).data(), catalog_->ScopeDevs(id).data(),
          catalog_->ScopeWeights(id).data(), scope.size());
      // Scope popcounts within a group sum to the block size, so this
      // charges exactly what the seed's one-pass-per-group join charged.
      if (counters != nullptr) counters->join_rows += scope.size();
    }
    if (counters != nullptr) ++counters->groups_joined;
  }
  return utilities;
}

std::vector<double> Evaluator::SingleFactUtilitiesReference(
    PerfCounters* counters) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> utilities(catalog_->NumFacts(), 0.0);
  for (uint32_t g = 0; g < catalog_->NumGroups(); ++g) {
    const FactGroup& group = catalog_->group(g);
    for (size_t r = 0; r < inst.num_rows; ++r) {
      FactId id = group.row_fact[r];
      double prior_dev = std::fabs(inst.prior - inst.target[r]);
      double fact_dev = std::fabs(catalog_->fact(id).value - inst.target[r]);
      double gain = prior_dev - fact_dev;
      if (gain > 0.0) utilities[id] += gain * inst.weight[r];
    }
    if (counters != nullptr) {
      counters->join_rows += inst.num_rows;
      ++counters->groups_joined;
    }
  }
  return utilities;
}

GreedyState::GreedyState(const Evaluator& evaluator) : evaluator_(&evaluator) {
  // The evaluator already computed both the per-row prior deviations and
  // their weighted sum (same terms, same order -- bit-identical).
  std::span<const double> prior_dev = evaluator.PriorDeviations();
  row_deviation_.assign(prior_dev.begin(), prior_dev.end());
  current_error_ = evaluator.BaseError();
}

std::pair<double, FactId> GreedyState::AccumulateGroupGains(
    uint32_t group_index, std::vector<double>* gains, PerfCounters* counters) const {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const FactGroup& group = catalog.group(group_index);
  const simd::Kernels& kernels = simd::Active();
  // Per fact, the same positive-gain kernel as the initialization join, with
  // the CURRENT deviation column gathered instead of the prior one. The
  // group's scopes partition the rows, so total work (and the counter
  // charge) is one pass over the instance block, like the seed join.
  for (uint32_t i = 0; i < group.num_facts; ++i) {
    FactId id = group.first_fact + i;
    std::span<const uint32_t> scope = catalog.ScopeRows(id);
    (*gains)[id] += kernels.gather_positive_gain(
        row_deviation_.data(), scope.data(), catalog.ScopeDevs(id).data(),
        catalog.ScopeWeights(id).data(), scope.size());
  }
  if (counters != nullptr) {
    counters->join_rows += inst.num_rows;
    ++counters->groups_joined;
  }
  if (group.num_facts == 0) return {-1.0, kNoFact};
  // Argmax with lowest-index tie-break over the group's contiguous gain
  // slice -- the same fact the seed's strict `>` scan selected.
  size_t best =
      kernels.argmax(gains->data() + group.first_fact, group.num_facts);
  FactId best_fact = group.first_fact + static_cast<FactId>(best);
  return {(*gains)[best_fact], best_fact};
}

double GreedyState::GroupUtilityBound(uint32_t group_index,
                                      PerfCounters* counters) const {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const FactGroup& group = catalog.group(group_index);
  const simd::Kernels& kernels = simd::Active();
  // Adding a fact can at most zero out the current deviation within its
  // scope, so sum(current deviation within scope) bounds the gain: one
  // gathered weighted-sum kernel call per fact (Algorithm 3, Line 15 -- a
  // group-by without a join), max over the group's facts.
  double bound = 0.0;
  for (uint32_t i = 0; i < group.num_facts; ++i) {
    FactId id = group.first_fact + i;
    std::span<const uint32_t> scope = catalog.ScopeRows(id);
    double scope_error =
        kernels.gather_weighted_sum(row_deviation_.data(), scope.data(),
                                    catalog.ScopeWeights(id).data(), scope.size());
    bound = std::max(bound, scope_error);
  }
  if (counters != nullptr) counters->bound_rows += inst.num_rows;
  return bound;
}

void GreedyState::ApplyFact(FactId id) {
  const FactCatalog& catalog = evaluator_->catalog();
  // Only rows within the fact's scope can change; the min-update kernel
  // visits exactly those (ascending, like the seed's full scan did) and
  // returns the weighted error reduction in one pass.
  std::span<const uint32_t> scope = catalog.ScopeRows(id);
  current_error_ -= simd::Active().min_update(
      row_deviation_.data(), scope.data(), catalog.ScopeDevs(id).data(),
      catalog.ScopeWeights(id).data(), scope.size());
}

}  // namespace vq
