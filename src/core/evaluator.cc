#include "core/evaluator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace vq {

void PerfCounters::Add(const PerfCounters& other) {
  join_rows += other.join_rows;
  bound_rows += other.bound_rows;
  groups_joined += other.groups_joined;
  groups_pruned += other.groups_pruned;
  leaf_evals += other.leaf_evals;
  nodes_expanded += other.nodes_expanded;
  pruned_by_bound += other.pruned_by_bound;
}

Evaluator::Evaluator(const SummaryInstance* instance, const FactCatalog* catalog)
    : instance_(instance), catalog_(catalog) {
  base_error_ = instance_->BaseError();
  const SummaryInstance& inst = *instance_;
  prior_dev_.resize(inst.num_rows);
  prior_dev_weighted_.resize(inst.num_rows);
  prior_block_weighted_.assign((inst.num_rows + 63) / 64, 0.0);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    prior_dev_[r] = std::fabs(inst.prior - inst.target[r]);
    prior_dev_weighted_[r] = prior_dev_[r] * inst.weight[r];
    prior_block_weighted_[r >> 6] += prior_dev_weighted_[r];
  }
}

double Evaluator::Error(std::span<const FactId> speech, ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  if (speech.empty()) return base_error_;
  if (!catalog_->HasScopeBits()) return ErrorReference(speech, model);

  // Word-at-a-time over the speech facts' scope bitsets: uncovered 64-row
  // blocks reduce to one precomputed sum, covered rows resolve conflicts
  // through the same ExpectedValue as the reference path.
  size_t words = catalog_->ScopeWords();
  std::vector<const uint64_t*> bits(speech.size());
  std::vector<double> all_values(speech.size());
  for (size_t f = 0; f < speech.size(); ++f) {
    bits[f] = catalog_->ScopeBits(speech[f]).data();
    all_values[f] = catalog_->fact(speech[f]).value;
  }
  std::vector<double> relevant;
  relevant.reserve(speech.size());
  double error = 0.0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t covered = 0;
    for (const uint64_t* fact_bits : bits) covered |= fact_bits[w];
    if (covered == 0) {
      error += prior_block_weighted_[w];
      continue;
    }
    size_t base = w << 6;
    size_t end = std::min(base + 64, inst.num_rows);
    for (size_t r = base; r < end; ++r) {
      uint64_t bit = uint64_t{1} << (r - base);
      if ((covered & bit) == 0) {
        error += prior_dev_weighted_[r];
        continue;
      }
      relevant.clear();
      for (size_t f = 0; f < speech.size(); ++f) {
        if (bits[f][w] & bit) relevant.push_back(all_values[f]);
      }
      double expected =
          ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
      error += std::fabs(expected - inst.target[r]) * inst.weight[r];
    }
  }
  return error;
}

double Evaluator::ErrorReference(std::span<const FactId> speech,
                                 ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  double error = 0.0;
  std::vector<double> relevant;
  std::vector<double> all_values;
  all_values.reserve(speech.size());
  for (FactId id : speech) all_values.push_back(catalog_->fact(id).value);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    relevant.clear();
    for (FactId id : speech) {
      if (catalog_->RowInScope(r, id)) relevant.push_back(catalog_->fact(id).value);
    }
    double expected =
        ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
    error += std::fabs(expected - inst.target[r]) * inst.weight[r];
  }
  return error;
}

double Evaluator::Utility(std::span<const FactId> speech, ConflictModel model) const {
  return base_error_ - Error(speech, model);
}

std::vector<double> Evaluator::RowExpectationsReference(
    std::span<const FactId> speech, ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> out(inst.num_rows, inst.prior);
  std::vector<double> relevant;
  std::vector<double> all_values;
  for (FactId id : speech) all_values.push_back(catalog_->fact(id).value);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    relevant.clear();
    for (FactId id : speech) {
      if (catalog_->RowInScope(r, id)) relevant.push_back(catalog_->fact(id).value);
    }
    out[r] = ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
  }
  return out;
}

std::vector<double> Evaluator::RowExpectations(std::span<const FactId> speech,
                                               ConflictModel model) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> out(inst.num_rows, inst.prior);
  if (speech.empty()) return out;
  if (!catalog_->HasScopeBits()) return RowExpectationsReference(speech, model);
  size_t words = catalog_->ScopeWords();
  std::vector<const uint64_t*> bits(speech.size());
  std::vector<double> all_values(speech.size());
  for (size_t f = 0; f < speech.size(); ++f) {
    bits[f] = catalog_->ScopeBits(speech[f]).data();
    all_values[f] = catalog_->fact(speech[f]).value;
  }
  std::vector<double> relevant;
  relevant.reserve(speech.size());
  for (size_t w = 0; w < words; ++w) {
    uint64_t covered = 0;
    for (const uint64_t* fact_bits : bits) covered |= fact_bits[w];
    // Uncovered rows keep the prior they were initialized with.
    size_t base = w << 6;
    while (covered != 0) {
      size_t r = base + static_cast<size_t>(std::countr_zero(covered));
      covered &= covered - 1;
      uint64_t bit = uint64_t{1} << (r - base);
      relevant.clear();
      for (size_t f = 0; f < speech.size(); ++f) {
        if (bits[f][w] & bit) relevant.push_back(all_values[f]);
      }
      out[r] = ExpectedValue(model, relevant, all_values, inst.prior, inst.target[r]);
    }
  }
  return out;
}

std::vector<double> Evaluator::SingleFactUtilities(PerfCounters* counters) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> utilities(catalog_->NumFacts(), 0.0);
  for (uint32_t g = 0; g < catalog_->NumGroups(); ++g) {
    const FactGroup& group = catalog_->group(g);
    for (uint32_t i = 0; i < group.num_facts; ++i) {
      FactId id = group.first_fact + i;
      double value = catalog_->fact(id).value;
      double utility = 0.0;
      std::span<const uint32_t> scope = catalog_->ScopeRows(id);
      for (uint32_t r : scope) {
        double gain = prior_dev_[r] - std::fabs(value - inst.target[r]);
        if (gain > 0.0) utility += gain * inst.weight[r];
      }
      utilities[id] = utility;
      // Scope popcounts within a group sum to the block size, so this
      // charges exactly what the seed's one-pass-per-group join charged.
      if (counters != nullptr) counters->join_rows += scope.size();
    }
    if (counters != nullptr) ++counters->groups_joined;
  }
  return utilities;
}

std::vector<double> Evaluator::SingleFactUtilitiesReference(
    PerfCounters* counters) const {
  const SummaryInstance& inst = *instance_;
  std::vector<double> utilities(catalog_->NumFacts(), 0.0);
  for (uint32_t g = 0; g < catalog_->NumGroups(); ++g) {
    const FactGroup& group = catalog_->group(g);
    for (size_t r = 0; r < inst.num_rows; ++r) {
      FactId id = group.row_fact[r];
      double prior_dev = std::fabs(inst.prior - inst.target[r]);
      double fact_dev = std::fabs(catalog_->fact(id).value - inst.target[r]);
      double gain = prior_dev - fact_dev;
      if (gain > 0.0) utilities[id] += gain * inst.weight[r];
    }
    if (counters != nullptr) {
      counters->join_rows += inst.num_rows;
      ++counters->groups_joined;
    }
  }
  return utilities;
}

GreedyState::GreedyState(const Evaluator& evaluator) : evaluator_(&evaluator) {
  // The evaluator already computed both the per-row prior deviations and
  // their weighted sum (same terms, same order -- bit-identical).
  std::span<const double> prior_dev = evaluator.PriorDeviations();
  row_deviation_.assign(prior_dev.begin(), prior_dev.end());
  current_error_ = evaluator.BaseError();
}

std::pair<double, FactId> GreedyState::AccumulateGroupGains(
    uint32_t group_index, std::vector<double>* gains, PerfCounters* counters) const {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const FactGroup& group = catalog.group(group_index);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    FactId id = group.row_fact[r];
    double fact_dev = std::fabs(catalog.fact(id).value - inst.target[r]);
    double gain = row_deviation_[r] - fact_dev;
    if (gain > 0.0) (*gains)[id] += gain * inst.weight[r];
  }
  if (counters != nullptr) {
    counters->join_rows += inst.num_rows;
    ++counters->groups_joined;
  }
  double best_gain = -1.0;
  FactId best_fact = kNoFact;
  for (uint32_t i = 0; i < group.num_facts; ++i) {
    FactId id = group.first_fact + i;
    if ((*gains)[id] > best_gain) {
      best_gain = (*gains)[id];
      best_fact = id;
    }
  }
  return {best_gain, best_fact};
}

double GreedyState::GroupUtilityBound(uint32_t group_index,
                                      PerfCounters* counters) const {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const FactGroup& group = catalog.group(group_index);
  // Adding a fact can at most zero out the current deviation within its
  // scope, so sum(current deviation within scope) bounds the gain.
  std::vector<double> scope_error(group.num_facts, 0.0);
  for (size_t r = 0; r < inst.num_rows; ++r) {
    FactId id = group.row_fact[r];
    scope_error[id - group.first_fact] += row_deviation_[r] * inst.weight[r];
  }
  if (counters != nullptr) counters->bound_rows += inst.num_rows;
  double bound = 0.0;
  for (double e : scope_error) bound = std::max(bound, e);
  return bound;
}

void GreedyState::ApplyFact(FactId id) {
  const SummaryInstance& inst = evaluator_->instance();
  const FactCatalog& catalog = evaluator_->catalog();
  const Fact& fact = catalog.fact(id);
  // Only rows within the fact's scope can change; the catalog's CSR scope
  // rows visit exactly those (ascending, like the seed's full scan did).
  for (uint32_t r : catalog.ScopeRows(id)) {
    double fact_dev = std::fabs(fact.value - inst.target[r]);
    if (fact_dev < row_deviation_[r]) {
      current_error_ -= (row_deviation_[r] - fact_dev) * inst.weight[r];
      row_deviation_[r] = fact_dev;
    }
  }
}

}  // namespace vq
