// Exact speech summarization (Algorithm 1): branch-and-bound over fact
// combinations with the paper's two pruning rules.
#ifndef VQ_CORE_EXACT_H_
#define VQ_CORE_EXACT_H_

#include "core/evaluator.h"
#include "core/summary.h"

namespace vq {

struct ExactOptions {
  int max_facts = 3;
  /// Wall-clock budget; <= 0 disables the deadline. On expiry the incumbent
  /// (at least as good as the greedy seed) is returned with timed_out set --
  /// mirroring the paper's per-scenario timeout handling (Section VIII-B).
  double timeout_seconds = 0.0;
  /// Enables the redundant-permutation elimination (facts enforced in
  /// decreasing single-fact-utility order; first atom of condition P).
  bool order_pruning = true;
  /// Enables the utility-bound pruning against the incumbent
  /// ((b - S.U) / r <= F.U; second atom of condition P).
  bool bound_pruning = true;
  /// Safety valve on exact leaf evaluations; 0 = unlimited.
  uint64_t max_leaf_evals = 0;
};

/// Finds a guaranteed-optimal speech of up to `max_facts` facts.
///
/// The search seeds its lower bound b with the greedy result (the "cheaper
/// heuristic" of Section IV-A), sorts facts by decreasing single-fact
/// utility, and expands combinations depth-first. A partial speech with
/// bound-sum S.U whose next candidate fact has single-fact utility F.U is
/// pruned when S.U + a * F.U < b, where a is the number of facts that can
/// still be added including the candidate -- by submodularity (Theorem 1)
/// and the enforced utility ordering this upper-bounds every completion
/// (Lemma 1). Surviving complete speeches are evaluated exactly.
SummaryResult ExactSummary(const Evaluator& evaluator, const ExactOptions& options);

}  // namespace vq

#endif  // VQ_CORE_EXACT_H_
