// Facade: build instance + catalog + evaluator and run a chosen algorithm.
#ifndef VQ_CORE_SUMMARIZER_H_
#define VQ_CORE_SUMMARIZER_H_

#include <memory>
#include <string>

#include "core/exact.h"
#include "core/greedy.h"
#include "core/summary.h"
#include "facts/catalog.h"
#include "facts/instance.h"

namespace vq {

/// Which algorithm the facade dispatches to (Figure 3's labels).
enum class Algorithm {
  kExact,            ///< E
  kGreedy,           ///< G-B
  kGreedyNaive,      ///< G-P
  kGreedyOptimized,  ///< G-O
};

const char* AlgorithmName(Algorithm algorithm);

/// Everything needed to summarize one (query, target) problem.
struct SummarizerOptions {
  int max_facts = 3;          ///< speech length m
  int max_fact_dims = 2;      ///< extra dimension predicates per fact
  Algorithm algorithm = Algorithm::kGreedyOptimized;
  InstanceOptions instance;
  double exact_timeout_seconds = 0.0;
  CostModelParams cost_model;
  /// Optional per-request serving deadline (not owned; may be null). Greedy
  /// variants checkpoint their best-so-far facts and return `timed_out`;
  /// the exact solver clamps its own timeout to the remaining budget.
  const Deadline* deadline = nullptr;
};

/// \brief A fully prepared summarization problem: owns the instance, fact
/// catalog and evaluator so callers can run several algorithms on the same
/// problem (as the Figure 3 bench does).
class PreparedProblem {
 public:
  static Result<PreparedProblem> Prepare(const Table& table,
                                         const PredicateSet& query_predicates,
                                         int target_index,
                                         const SummarizerOptions& options);

  /// Wraps an already-built instance (e.g. from BuildInstanceFromRows on the
  /// serving layer's batched path) with its fact catalog and evaluator.
  static Result<PreparedProblem> FromInstance(SummaryInstance instance,
                                              const SummarizerOptions& options);

  const SummaryInstance& instance() const { return *instance_; }
  const FactCatalog& catalog() const { return *catalog_; }
  const Evaluator& evaluator() const { return *evaluator_; }

  /// Runs the algorithm selected in `options`.
  SummaryResult Run(const SummarizerOptions& options) const;

 private:
  PreparedProblem() = default;
  std::unique_ptr<SummaryInstance> instance_;
  std::unique_ptr<FactCatalog> catalog_;
  std::unique_ptr<Evaluator> evaluator_;
};

/// One-shot convenience: prepare + run.
Result<SummaryResult> Summarize(const Table& table, const PredicateSet& predicates,
                                int target_index, const SummarizerOptions& options);

}  // namespace vq

#endif  // VQ_CORE_SUMMARIZER_H_
