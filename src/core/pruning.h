// Fact-group pruning plans: cost model (Section VI-C) and plan generation
// (Algorithm 4) with cost-based plan selection (OPT_PRUNE).
#ifndef VQ_CORE_PRUNING_H_
#define VQ_CORE_PRUNING_H_

#include <cstdint>
#include <vector>

#include "facts/catalog.h"

namespace vq {

/// Which fact-pruning strategy the greedy algorithm uses (Figure 3's
/// G-B / G-P / G-O variants).
enum class FactPruning {
  kNone,       ///< G-B: compute utility for every fact group
  kNaive,      ///< G-P: fixed plan -- smallest group as source, rest targets
  kOptimized,  ///< G-O: cost-based plan selection over Algorithm 4 candidates
};

const char* FactPruningName(FactPruning pruning);

/// \brief A pruning plan: utility is computed for `sources` first; then each
/// `target` group's upper bound is compared against the best source gain,
/// pruning dominated targets together with all their specializations.
struct PruningPlan {
  std::vector<uint32_t> sources;
  std::vector<uint32_t> targets;  ///< in application order
  double estimated_cost = 0.0;
};

/// Tunables of the Section VI-C cost model.
struct CostModelParams {
  /// Stddev of the per-fact utility distribution (both bounds and true
  /// utilities are modeled as N(1/M(g), sigma^2)).
  double sigma = 0.25;
  /// Relative per-row cost of a utility join (C_U) vs. a bound group-by (C_D).
  double join_cost_per_row = 2.0;
  double bound_cost_per_row = 1.0;
};

/// \brief Computes pruning probabilities, estimates plan costs, generates
/// Algorithm 4's candidates and picks the cheapest.
class PruningPlanner {
 public:
  /// `fact_counts[g]` = M(g), the number of member facts of group g.
  PruningPlanner(std::vector<uint32_t> group_masks, std::vector<size_t> fact_counts,
                 size_t num_rows, CostModelParams params = {});

  /// Pr(Ps->t): the source group's best utility exceeds the target group's
  /// bound, under N(1/M, sigma^2) per-fact models.
  double PruneProbability(uint32_t source, uint32_t target) const;

  /// Pr(Pt) given a set of sources: 1 - prod(1 - Pr(Ps->t)).
  double TargetPruneProbability(const std::vector<uint32_t>& sources,
                                uint32_t target) const;

  /// Expected data-processing cost of a plan (Section VI-C formula).
  double EstimateCost(const PruningPlan& plan) const;

  /// Algorithm 4: candidate plans. Sources are cardinality-ascending
  /// prefixes of the group list; targets chosen greedily by
  /// H(t, S, L) = Pr(Pt) * |{l in L : t subseteq l}|. Also includes the
  /// trivial no-pruning plan (all groups as sources, no targets).
  std::vector<PruningPlan> GeneratePlans() const;

  /// OPT_PRUNE: the minimum-estimated-cost candidate.
  PruningPlan ChoosePlan() const;

  /// The naive G-P plan: the smallest group is the only source; all other
  /// groups are targets in cardinality-ascending order.
  PruningPlan NaivePlan() const;

  size_t num_groups() const { return masks_.size(); }

 private:
  bool Specializes(uint32_t general, uint32_t special) const {
    return (masks_[general] & masks_[special]) == masks_[general];
  }

  std::vector<uint32_t> masks_;
  std::vector<size_t> fact_counts_;
  size_t num_rows_;
  CostModelParams params_;
  std::vector<uint32_t> by_count_;  ///< group indices sorted by M(g) ascending
};

}  // namespace vq

#endif  // VQ_CORE_PRUNING_H_
