// Greedy speech summarization (Algorithm 2) with optional fact-group pruning
// (Algorithm 3) -- the paper's G-B, G-P and G-O variants.
#ifndef VQ_CORE_GREEDY_H_
#define VQ_CORE_GREEDY_H_

#include "core/evaluator.h"
#include "core/pruning.h"
#include "core/summary.h"
#include "util/stopwatch.h"

namespace vq {

struct GreedyOptions {
  /// Maximum facts per speech (m). Prior work shows user retention drops
  /// sharply after three facts, the paper's default (Section VIII-A).
  int max_facts = 3;
  FactPruning pruning = FactPruning::kNone;
  CostModelParams cost_model;
  /// Optional per-request serving deadline (not owned; may be null). Greedy
  /// is an anytime algorithm: each completed iteration leaves a valid,
  /// just less complete, fact set. When the deadline expires mid-run the
  /// best-so-far facts are returned with `timed_out` set, and the serving
  /// layer renders them as a degraded summary instead of failing.
  const Deadline* deadline = nullptr;
};

/// Runs the greedy algorithm: in each iteration, computes utility gains of
/// all (unpruned) facts given the current speech, adds the best fact, and
/// recomputes per-row expectations. Guarantees utility within (1 - 1/e) of
/// the optimum (Theorem 3). Pruning never changes the selected facts, only
/// the work performed (the bound of Algorithm 3 is conservative).
SummaryResult GreedySummary(const Evaluator& evaluator, const GreedyOptions& options);

}  // namespace vq

#endif  // VQ_CORE_GREEDY_H_
