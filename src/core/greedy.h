// Greedy speech summarization (Algorithm 2) with optional fact-group pruning
// (Algorithm 3) -- the paper's G-B, G-P and G-O variants.
#ifndef VQ_CORE_GREEDY_H_
#define VQ_CORE_GREEDY_H_

#include "core/evaluator.h"
#include "core/pruning.h"
#include "core/summary.h"

namespace vq {

struct GreedyOptions {
  /// Maximum facts per speech (m). Prior work shows user retention drops
  /// sharply after three facts, the paper's default (Section VIII-A).
  int max_facts = 3;
  FactPruning pruning = FactPruning::kNone;
  CostModelParams cost_model;
};

/// Runs the greedy algorithm: in each iteration, computes utility gains of
/// all (unpruned) facts given the current speech, adds the best fact, and
/// recomputes per-row expectations. Guarantees utility within (1 - 1/e) of
/// the optimum (Theorem 3). Pruning never changes the selected facts, only
/// the work performed (the bound of Algorithm 3 is conservative).
SummaryResult GreedySummary(const Evaluator& evaluator, const GreedyOptions& options);

}  // namespace vq

#endif  // VQ_CORE_GREEDY_H_
