#include "core/expectation.h"

#include <cmath>

namespace vq {

const char* ConflictModelName(ConflictModel model) {
  switch (model) {
    case ConflictModel::kClosest: return "Closest";
    case ConflictModel::kFarthest: return "Farthest";
    case ConflictModel::kAverageScope: return "Avg. Scope";
    case ConflictModel::kAverageAll: return "Avg. All";
  }
  return "Unknown";
}

double ExpectedValue(ConflictModel model, std::span<const double> relevant_values,
                     std::span<const double> all_values, double prior,
                     double actual) {
  if (relevant_values.empty()) return prior;
  switch (model) {
    case ConflictModel::kClosest: {
      double best = prior;
      double best_dev = std::fabs(prior - actual);
      for (double v : relevant_values) {
        double dev = std::fabs(v - actual);
        if (dev < best_dev) {
          best_dev = dev;
          best = v;
        }
      }
      return best;
    }
    case ConflictModel::kFarthest: {
      double worst = relevant_values.front();
      double worst_dev = std::fabs(worst - actual);
      for (double v : relevant_values) {
        double dev = std::fabs(v - actual);
        if (dev > worst_dev) {
          worst_dev = dev;
          worst = v;
        }
      }
      return worst;
    }
    case ConflictModel::kAverageScope: {
      double sum = 0.0;
      for (double v : relevant_values) sum += v;
      return sum / static_cast<double>(relevant_values.size());
    }
    case ConflictModel::kAverageAll: {
      if (all_values.empty()) return prior;
      double sum = 0.0;
      for (double v : all_values) sum += v;
      return sum / static_cast<double>(all_values.size());
    }
  }
  return prior;
}

}  // namespace vq
