#include "core/exact.h"

#include <algorithm>
#include <numeric>

#include "core/greedy.h"
#include "util/stopwatch.h"

namespace vq {

namespace {

/// Depth-first search context over utility-sorted facts.
class ExactSearch {
 public:
  ExactSearch(const Evaluator& evaluator, const ExactOptions& options,
              std::vector<FactId> sorted_facts, std::vector<double> utilities)
      : evaluator_(evaluator),
        options_(options),
        sorted_facts_(std::move(sorted_facts)),
        utilities_(std::move(utilities)),
        deadline_(options.timeout_seconds) {}

  void Run(SummaryResult* result) {
    result_ = result;
    chosen_.reserve(static_cast<size_t>(options_.max_facts));
    Dfs(0, 0.0);
  }

  bool timed_out() const { return timed_out_; }

 private:
  /// Evaluates the current combination exactly and updates the incumbent.
  void EvaluateLeaf() {
    ++result_->counters.leaf_evals;
    double utility = evaluator_.Utility(chosen_);
    if (utility > result_->utility + 1e-12) {
      result_->utility = utility;
      result_->facts.assign(chosen_.begin(), chosen_.end());
    }
  }

  bool Expired() {
    if (timed_out_) return true;
    if (ticks_++ % 256 == 0 && deadline_.Expired()) timed_out_ = true;
    if (options_.max_leaf_evals > 0 &&
        result_->counters.leaf_evals >= options_.max_leaf_evals) {
      timed_out_ = true;
    }
    return timed_out_;
  }

  /// Expands combinations starting at `next` with bound-sum `sum_u`
  /// (the sum of the chosen facts' single-fact utilities, an upper bound on
  /// the partial speech's utility by submodularity -- Lemma 2).
  void Dfs(size_t next, double sum_u) {
    if (Expired()) return;
    ++result_->counters.nodes_expanded;
    if (chosen_.size() == static_cast<size_t>(options_.max_facts) ||
        next >= sorted_facts_.size()) {
      if (!chosen_.empty()) EvaluateLeaf();
      return;
    }
    int slots_left = options_.max_facts - static_cast<int>(chosen_.size());
    for (size_t i = next; i < sorted_facts_.size(); ++i) {
      double fact_utility = utilities_[sorted_facts_[i]];
      if (options_.bound_pruning) {
        // Every later fact has utility <= fact_utility (sorted order), and by
        // diminishing returns each adds at most its single-fact utility, so
        // the best completion through fact i is bounded by
        // sum_u + slots_left * fact_utility. Prune when below the incumbent.
        // Facts are sorted, so all following candidates prune too: break.
        if (sum_u + static_cast<double>(slots_left) * fact_utility <
            result_->utility - 1e-12) {
          ++result_->counters.pruned_by_bound;
          break;
        }
      }
      // Order pruning on: enumerate combinations in sorted order (each fact
      // set visited once). Off: enumerate ordered sequences of distinct
      // facts (the redundant permutations the first atom of condition P
      // exists to eliminate).
      if (!options_.order_pruning &&
          std::find(chosen_.begin(), chosen_.end(), sorted_facts_[i]) !=
              chosen_.end()) {
        continue;
      }
      chosen_.push_back(sorted_facts_[i]);
      size_t continuation = options_.order_pruning ? i + 1 : 0;
      Dfs(continuation, sum_u + fact_utility);
      chosen_.pop_back();
      if (timed_out_) return;
    }
    // A shorter speech can only be optimal if no fact remains; utility is
    // monotone, so leaves of maximal feasible length dominate. (Handled by
    // the next >= size branch above.)
  }

  const Evaluator& evaluator_;
  const ExactOptions& options_;
  std::vector<FactId> sorted_facts_;
  std::vector<double> utilities_;
  Deadline deadline_;
  SummaryResult* result_ = nullptr;
  std::vector<FactId> chosen_;
  uint64_t ticks_ = 0;
  bool timed_out_ = false;
};

}  // namespace

SummaryResult ExactSummary(const Evaluator& evaluator, const ExactOptions& options) {
  Stopwatch watch;
  SummaryResult result;
  result.base_error = evaluator.BaseError();

  const FactCatalog& catalog = evaluator.catalog();
  if (catalog.NumFacts() == 0 || options.max_facts <= 0) {
    result.error = result.base_error;
    result.elapsed_seconds = watch.ElapsedSeconds();
    return result;
  }

  // Lower bound b: the greedy solution (near-optimal and cheap, Theorem 3).
  GreedyOptions greedy_options;
  greedy_options.max_facts = options.max_facts;
  SummaryResult greedy = GreedySummary(evaluator, greedy_options);
  result.facts = greedy.facts;
  result.utility = greedy.utility;
  result.counters.Add(greedy.counters);

  // Single-fact utilities (Line 6 of Algorithm 1), then sort facts by
  // decreasing utility to enforce the canonical fact order.
  std::vector<double> utilities = evaluator.SingleFactUtilities(&result.counters);
  std::vector<FactId> sorted(catalog.NumFacts());
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::stable_sort(sorted.begin(), sorted.end(), [&utilities](FactId a, FactId b) {
    return utilities[a] > utilities[b];
  });

  ExactSearch search(evaluator, options, std::move(sorted), std::move(utilities));
  search.Run(&result);
  result.timed_out = search.timed_out();

  result.error = result.base_error - result.utility;
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace vq
