#include "core/greedy.h"

#include <algorithm>
#include <memory>

#include "util/stopwatch.h"

namespace vq {

namespace {

/// Chooses the fact with maximal utility gain among all unpruned groups.
/// Implements Algorithm 3's UTILITY when a pruning plan is supplied.
/// `gains` is the caller's reusable per-fact accumulator (NumFacts entries);
/// it is zeroed here so the greedy loop allocates it once, not per
/// iteration -- the SIMD gain kernels it feeds leave allocation as the only
/// per-iteration overhead worth seeing in a profile.
std::pair<double, FactId> SelectBestFact(const Evaluator& evaluator,
                                         const GreedyState& state,
                                         const PruningPlan* plan,
                                         std::vector<double>* gains_buffer,
                                         PerfCounters* counters,
                                         const Deadline* deadline,
                                         bool* timed_out) {
  const FactCatalog& catalog = evaluator.catalog();
  std::vector<double>& gains = *gains_buffer;
  gains.assign(catalog.NumFacts(), 0.0);
  double best_gain = -1.0;
  FactId best_fact = kNoFact;

  // Deadline polling is amortized over groups: a clock read is cheap next to
  // one AccumulateGroupGains pass, but catalogs can have thousands of groups.
  size_t groups_seen = 0;
  auto expired = [&]() {
    if (deadline == nullptr) return false;
    if ((groups_seen++ & 15) != 0) return false;
    if (!deadline->Expired()) return false;
    *timed_out = true;
    return true;
  };

  auto consider_group = [&](uint32_t g) {
    auto [gain, fact] = state.AccumulateGroupGains(g, &gains, counters);
    if (fact != kNoFact && gain > best_gain) {
      best_gain = gain;
      best_fact = fact;
    }
  };

  if (plan == nullptr) {
    for (uint32_t g = 0; g < catalog.NumGroups(); ++g) {
      if (expired()) return {best_gain, best_fact};
      consider_group(g);
    }
    return {best_gain, best_fact};
  }

  // 1. Compute utility for the pruning sources; m = best source gain.
  std::vector<bool> handled(catalog.NumGroups(), false);
  for (uint32_t g : plan->sources) {
    if (expired()) return {best_gain, best_fact};
    consider_group(g);
    handled[g] = true;
  }
  double source_best = best_gain;

  // 2. Compare target bounds against the best source gain; prune dominated
  //    targets together with all their specializations.
  std::vector<bool> pruned(catalog.NumGroups(), false);
  for (uint32_t t : plan->targets) {
    if (pruned[t] || handled[t]) continue;  // already pruned via a generalization
    double bound = state.GroupUtilityBound(t, counters);
    if (source_best > bound) {
      uint32_t t_mask = catalog.group(t).mask;
      for (uint32_t g = 0; g < catalog.NumGroups(); ++g) {
        if (!handled[g] && (catalog.group(g).mask & t_mask) == t_mask) {
          pruned[g] = true;
          if (counters != nullptr) ++counters->groups_pruned;
        }
      }
    }
  }

  // 3. Compute utility for surviving groups.
  for (uint32_t g = 0; g < catalog.NumGroups(); ++g) {
    if (handled[g] || pruned[g]) continue;
    if (expired()) return {best_gain, best_fact};
    consider_group(g);
  }
  return {best_gain, best_fact};
}

}  // namespace

SummaryResult GreedySummary(const Evaluator& evaluator, const GreedyOptions& options) {
  Stopwatch watch;
  SummaryResult result;
  result.base_error = evaluator.BaseError();

  const FactCatalog& catalog = evaluator.catalog();
  if (catalog.NumFacts() == 0 || options.max_facts <= 0) {
    result.error = result.base_error;
    result.elapsed_seconds = watch.ElapsedSeconds();
    return result;
  }

  // Pruning plans depend only on static group statistics, so the plan is
  // selected once and reused in every iteration (OPT_PRUNE).
  std::unique_ptr<PruningPlan> plan;
  if (options.pruning != FactPruning::kNone && catalog.NumGroups() > 1) {
    std::vector<uint32_t> masks;
    std::vector<size_t> counts;
    for (const auto& group : catalog.groups()) {
      masks.push_back(group.mask);
      counts.push_back(group.num_facts);
    }
    PruningPlanner planner(std::move(masks), std::move(counts),
                           evaluator.instance().num_rows, options.cost_model);
    plan = std::make_unique<PruningPlan>(options.pruning == FactPruning::kNaive
                                             ? planner.NaivePlan()
                                             : planner.ChoosePlan());
  }

  GreedyState state(evaluator);
  std::vector<double> gains_buffer;
  for (int i = 0; i < options.max_facts; ++i) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      result.timed_out = true;
      break;
    }
    bool scan_timed_out = false;
    auto [gain, fact] =
        SelectBestFact(evaluator, state, plan.get(), &gains_buffer,
                       &result.counters, options.deadline, &scan_timed_out);
    if (scan_timed_out) {
      // A partial scan's argmax is not the greedy choice; keep the
      // checkpointed facts from completed iterations (anytime property)
      // rather than appending a possibly poor fact.
      result.timed_out = true;
      break;
    }
    if (fact == kNoFact || gain <= 1e-12) break;  // no fact improves the speech
    result.facts.push_back(fact);
    state.ApplyFact(fact);
  }

  result.error = state.CurrentError();
  result.utility = result.base_error - result.error;
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace vq
