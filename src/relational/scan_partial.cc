#include "relational/scan_partial.h"

namespace vq {

size_t TotalRows(const ScanPartials& partials) {
  size_t total = 0;
  for (const ScanPartial& partial : partials) total += partial.rows.size();
  return total;
}

void AppendGlobalRows(const ScanPartial& partial, std::vector<uint32_t>* out) {
  if (partial.base == 0) {
    out->insert(out->end(), partial.rows.begin(), partial.rows.end());
    return;
  }
  for (uint32_t local : partial.rows) out->push_back(partial.base + local);
}

std::vector<uint32_t> MergeScanPartials(ScanPartials partials) {
  if (partials.empty()) return {};
  if (partials.size() == 1 && partials[0].base == 0) {
    return std::move(partials[0].rows);  // the unsharded case: zero-copy
  }
  std::vector<uint32_t> merged;
  merged.reserve(TotalRows(partials));
  for (const ScanPartial& partial : partials) AppendGlobalRows(partial, &merged);
  return merged;
}

}  // namespace vq
