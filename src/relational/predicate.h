// Conjunctive equality predicates over dimension columns (the paper's query
// model, Section III: "a data subset, defined by a conjunction of equality
// predicates").
#ifndef VQ_RELATIONAL_PREDICATE_H_
#define VQ_RELATIONAL_PREDICATE_H_

#include <string>
#include <vector>

#include "relational/scan_partial.h"
#include "storage/table.h"
#include "util/status.h"

namespace vq {

/// One equality predicate `dim = value` (value as a dictionary code).
struct EqPredicate {
  int dim = -1;
  ValueId value = kNoValue;

  bool operator==(const EqPredicate& other) const {
    return dim == other.dim && value == other.value;
  }
};

/// A conjunction of equality predicates, kept sorted by dimension index.
/// At most one predicate per dimension.
using PredicateSet = std::vector<EqPredicate>;

/// Builds a predicate from column/value names; fails if either is unknown.
Result<EqPredicate> MakePredicate(const Table& table, const std::string& dim_name,
                                  const std::string& value);

/// Sorts by dimension and rejects duplicate dimensions.
Status NormalizePredicates(PredicateSet* predicates);

/// True if `row` of `table` satisfies every predicate.
bool RowMatches(const Table& table, size_t row, const PredicateSet& predicates);

/// Row ids of all rows satisfying the conjunction (the sigma operator).
std::vector<uint32_t> FilterRows(const Table& table, const PredicateSet& predicates);

/// Filters many predicate sets in ONE shared pass over the table: out[i]
/// holds the row ids matching `predicate_sets[i]`. Equivalent to calling
/// FilterRows once per set, but the table is scanned a single time -- the
/// serving layer's batched on-demand path groups concurrent misses on the
/// same target and resolves their subsets here.
std::vector<std::vector<uint32_t>> FilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets);

/// FilterRowsMulti without the final merge: out[i][s] is predicate set i's
/// answer on shard s (see relational/scan_partial.h for the id contract).
/// Consumers that iterate rows anyway -- the serving layer's batch solves --
/// take this form and merge (or stream) the partials themselves.
std::vector<ScanPartials> FilterRowsMultiPartials(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets);

/// True if `subset` is contained in `superset` (predicate-set inclusion,
/// used by the runtime's most-specific-summary lookup: S is a subset of Q).
bool IsSubsetOf(const PredicateSet& subset, const PredicateSet& superset);

/// "season=Winter AND region=North" (empty set renders as "<all rows>").
std::string PredicatesToString(const Table& table, const PredicateSet& predicates);

/// Canonical string key "3:17|5:2" used for store lookups; assumes the set
/// has been normalized.
std::string PredicatesKey(const PredicateSet& predicates);

}  // namespace vq

#endif  // VQ_RELATIONAL_PREDICATE_H_
