#include "relational/group_by.h"

#include <cassert>

namespace vq {

uint64_t PackGroupKey(std::span<const ValueId> codes) {
  assert(codes.size() <= kMaxGroupDims);
  uint64_t key = 0;
  for (ValueId code : codes) {
    assert(code <= kMaxPackableCode);
    key = (key << 16) | static_cast<uint64_t>(code + 1);  // +1 distinguishes width
  }
  return key;
}

double GroupByResult::AverageOf(uint64_t key) const {
  auto it = index.find(key);
  if (it == index.end()) return 0.0;
  const AggregateGroup& g = groups[it->second];
  return g.count > 0.0 ? g.sum / g.count : 0.0;
}

GroupByResult GroupBy(const Table& table, std::span<const uint32_t> row_ids,
                      const std::vector<int>& dims, std::span<const double> values,
                      std::span<const double> weights) {
  assert(dims.size() <= kMaxGroupDims);
  GroupByResult out;
  ValueId codes[kMaxGroupDims];
  for (size_t i = 0; i < row_ids.size(); ++i) {
    uint32_t row = row_ids[i];
    for (size_t d = 0; d < dims.size(); ++d) {
      codes[d] = table.DimCode(row, static_cast<size_t>(dims[d]));
    }
    uint64_t key = PackGroupKey(std::span<const ValueId>(codes, dims.size()));
    auto [it, inserted] = out.index.emplace(key, static_cast<uint32_t>(out.groups.size()));
    if (inserted) out.groups.push_back(AggregateGroup{key, 0.0, 0.0});
    AggregateGroup& group = out.groups[it->second];
    double w = weights.empty() ? 1.0 : weights[i];
    group.count += w;
    if (!values.empty()) group.sum += values[i] * w;
  }
  return out;
}

size_t CountDistinctCombos(const Table& table, std::span<const uint32_t> row_ids,
                           const std::vector<int>& dims) {
  if (dims.empty()) return row_ids.empty() ? 0 : 1;
  GroupByResult grouped = GroupBy(table, row_ids, dims, {}, {});
  return grouped.groups.size();
}

}  // namespace vq
