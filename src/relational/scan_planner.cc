#include "relational/scan_planner.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "storage/index.h"
#include "util/stopwatch.h"

namespace vq {

ScanStats& GlobalScanStats() {
  static ScanStats* stats = new ScanStats();  // never destroyed: outlives workers
  return *stats;
}

namespace {

/// The statistics instance that STEERS this plan: the table's own once it is
/// warm on both paths (per_table_stats), else the caller-injected (usually
/// process-wide) instance, else nullptr (fixed cost factor).
ScanStats* PlanningStats(const Table& table, const ScanPlannerOptions& options) {
  if (options.per_table_stats) {
    ScanStats& local = table.index().scan_stats();
    if (local.postings_samples() >= options.table_stats_min_samples &&
        local.scan_samples() >= options.table_stats_min_samples) {
      return &local;
    }
  }
  return options.stats;
}

/// Filter-execution latency by path, fed ONLY from the already-stopwatched
/// statistics samples: the untimed fast paths (single-predicate postings,
/// O(1) plans, statistics off) stay untimed.
obs::LatencyHistogram* FilterHistogram(bool postings) {
  static obs::LatencyHistogram* hists[2] = {
      obs::MetricsRegistry::Global().GetHistogram(obs::MetricsRegistry::WithLabel(
          "vq_scan_filter_seconds", "path", "scan")),
      obs::MetricsRegistry::Global().GetHistogram(obs::MetricsRegistry::WithLabel(
          "vq_scan_filter_seconds", "path", "postings")),
  };
  return hists[postings ? 1 : 0];
}

/// Recording trains the per-table model (when enabled) AND the injected
/// shared one, so a cold table converges to its own statistics while the
/// process-wide fallback keeps learning from every table.
void RecordPostingsSample(const Table& table, const ScanPlannerOptions& options,
                          size_t driver_rows, double seconds) {
  if (options.stats != nullptr) options.stats->RecordPostings(driver_rows, seconds);
  if (options.per_table_stats) {
    table.index().scan_stats().RecordPostings(driver_rows, seconds);
  }
  FilterHistogram(/*postings=*/true)->Record(seconds);
}

void RecordScanSample(const Table& table, const ScanPlannerOptions& options,
                      size_t table_rows, double seconds) {
  if (options.stats != nullptr) options.stats->RecordScan(table_rows, seconds);
  if (options.per_table_stats) {
    table.index().scan_stats().RecordScan(table_rows, seconds);
  }
  FilterHistogram(/*postings=*/false)->Record(seconds);
}

/// True when statistics feedback is active for this call at all (either a
/// shared instance was injected or per-table statistics are on).
bool RecordsStats(const ScanPlannerOptions& options) {
  return options.stats != nullptr || options.per_table_stats;
}

/// Plan-choice counter for `strategy`. The planner is a free function with
/// no owning object to hold instruments, so these live as function-local
/// statics against the process-global registry (which is never destroyed);
/// after the first call each bump is one relaxed atomic add.
obs::Counter* PlanCounter(ScanStrategy strategy) {
  static obs::Counter* counters[4] = {
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "all-rows")),
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "empty")),
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "postings")),
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "column-scan")),
  };
  return counters[static_cast<size_t>(strategy)];
}


/// Forced-alternate-path exploration, shared by the single and batched
/// funnels: every kProbePeriod-th eligible decision (multi-predicate, both
/// paths runnable, statistics active) flips `plan` to the path the planner
/// did NOT pick. Only executed paths are timed, so without this an outlier
/// streak that clamps the factor starves the disfavored path of samples
/// forever; the probe guarantees both EWMAs keep training. Both paths
/// return identical rows, so a probe can never change a result. Returns
/// true when the plan was flipped.
bool MaybeProbeAlternate(const Table& table, const ScanPlannerOptions& options,
                         const PredicateSet& predicates, ScanPlan* plan) {
  if (options.force_scan || predicates.size() <= 1) return false;
  if (plan->strategy != ScanStrategy::kPostings &&
      plan->strategy != ScanStrategy::kColumnScan) {
    return false;
  }
  // Probe cost must stay comparable to the favored path's. Flipping a scan
  // plan to postings is always cheap (the intersection visits at most the
  // driver rows, a subset of what the scan visits). Flipping a POSTINGS
  // plan to a full column scan costs NumRows/driver_rows times the favored
  // path -- unbounded for selective conjunctions on big tables -- so it is
  // only probed while that ratio is within the factor clamp: beyond
  // kMaxFactor the learned factor saturates and the extra sample could not
  // change any decision anyway, making an expensive probe pure waste.
  if (plan->strategy == ScanStrategy::kPostings &&
      static_cast<double>(table.NumRows()) >
          static_cast<double>(plan->estimated_rows) * ScanStats::kMaxFactor) {
    return false;
  }
  ScanStats* steering = PlanningStats(table, options);
  if (steering == nullptr || !steering->TakeProbe()) return false;
  plan->strategy = plan->strategy == ScanStrategy::kPostings
                       ? ScanStrategy::kColumnScan
                       : ScanStrategy::kPostings;
  static obs::Counter* probes =
      obs::MetricsRegistry::Global().GetCounter("vq_scan_probes_total");
  probes->Increment();
  return true;
}

/// Galloping (exponential-probe) lower bound: first position in [lo, size)
/// with list[pos] >= row. Doubles the step from the cursor before the binary
/// search, so intersecting a short driver against a long list costs
/// O(short * log(long / short)) instead of O(short * log(long)).
size_t GallopLowerBound(std::span<const uint32_t> list, size_t lo, uint32_t row) {
  size_t size = list.size();
  size_t step = 1;
  size_t hi = lo;
  while (hi < size && list[hi] < row) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > size) hi = size;
  const uint32_t* first = list.data() + lo;
  const uint32_t* bound = std::lower_bound(first, list.data() + hi, row);
  return static_cast<size_t>(bound - list.data());
}

/// In-place intersection of sorted `result` with sorted `list` by galloping.
void GallopIntersect(std::vector<uint32_t>* result, std::span<const uint32_t> list) {
  size_t kept = 0;
  size_t cursor = 0;
  for (uint32_t row : *result) {
    cursor = GallopLowerBound(list, cursor, row);
    if (cursor == list.size()) break;
    if (list[cursor] == row) {
      (*result)[kept++] = row;
      ++cursor;
    }
  }
  result->resize(kept);
}

}  // namespace

const char* ScanStrategyName(ScanStrategy strategy) {
  switch (strategy) {
    case ScanStrategy::kAllRows: return "all-rows";
    case ScanStrategy::kEmptyResult: return "empty";
    case ScanStrategy::kPostings: return "postings";
    case ScanStrategy::kColumnScan: return "column-scan";
  }
  return "unknown";
}

ScanPlan PlanScan(const Table& table, const PredicateSet& predicates,
                  const ScanPlannerOptions& options) {
  ScanPlan plan;
  if (predicates.empty()) {
    plan.strategy = ScanStrategy::kAllRows;
    plan.estimated_rows = table.NumRows();
    PlanCounter(plan.strategy)->Increment();
    return plan;
  }
  const TableIndex& index = table.index();
  size_t min_count = table.NumRows();
  int driver = 0;
  for (size_t i = 0; i < predicates.size(); ++i) {
    const EqPredicate& p = predicates[i];
    size_t count = index.Count(static_cast<size_t>(p.dim), p.value);
    if (count == 0) {
      plan.strategy = ScanStrategy::kEmptyResult;
      plan.estimated_rows = 0;
      PlanCounter(plan.strategy)->Increment();
      return plan;
    }
    if (count < min_count) {
      min_count = count;
      driver = static_cast<int>(i);
    }
  }
  plan.estimated_rows = min_count;
  plan.driver = driver;
  if (options.force_scan) {
    plan.strategy = ScanStrategy::kColumnScan;
    PlanCounter(plan.strategy)->Increment();
    return plan;
  }
  // A single predicate is a posting-list copy -- never scan. Conjunctions
  // use postings while the driver list is selective enough that galloping
  // probes beat one comparison per table row. With statistics feedback the
  // ratio comes from the observed EWMA costs instead of the fixed default
  // (the table's own statistics once warm, the shared instance until then).
  ScanStats* stats = PlanningStats(table, options);
  double cost_factor = stats != nullptr ? stats->CostFactor(options.cost_factor)
                                        : options.cost_factor;
  bool selective = static_cast<double>(min_count) * cost_factor <=
                   static_cast<double>(table.NumRows());
  plan.strategy = (predicates.size() == 1 || selective) ? ScanStrategy::kPostings
                                                        : ScanStrategy::kColumnScan;
  PlanCounter(plan.strategy)->Increment();
  return plan;
}

std::vector<uint32_t> FilterRowsPostings(const Table& table,
                                         const PredicateSet& predicates) {
  const TableIndex& index = table.index();
  // Intersect in ascending posting-list length: the driver bounds the work
  // of every later gallop.
  std::vector<size_t> order(predicates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return index.Count(static_cast<size_t>(predicates[a].dim), predicates[a].value) <
           index.Count(static_cast<size_t>(predicates[b].dim), predicates[b].value);
  });
  std::span<const uint32_t> driver = index.Postings(
      static_cast<size_t>(predicates[order[0]].dim), predicates[order[0]].value);
  std::vector<uint32_t> result(driver.begin(), driver.end());
  for (size_t i = 1; i < order.size() && !result.empty(); ++i) {
    const EqPredicate& p = predicates[order[i]];
    GallopIntersect(&result, index.Postings(static_cast<size_t>(p.dim), p.value));
  }
  return result;
}

std::vector<uint32_t> FilterRowsColumnScan(const Table& table,
                                           const PredicateSet& predicates) {
  std::vector<uint32_t> result;
  if (predicates.empty()) {
    result.resize(table.NumRows());
    std::iota(result.begin(), result.end(), 0);
    return result;
  }
  // First predicate: tight scan over one contiguous code column.
  {
    const std::vector<ValueId>& column =
        table.DimColumn(static_cast<size_t>(predicates[0].dim));
    ValueId want = predicates[0].value;
    for (size_t r = 0; r < column.size(); ++r) {
      if (column[r] == want) result.push_back(static_cast<uint32_t>(r));
    }
  }
  // Each further predicate refines the survivors against its column.
  for (size_t i = 1; i < predicates.size() && !result.empty(); ++i) {
    const std::vector<ValueId>& column =
        table.DimColumn(static_cast<size_t>(predicates[i].dim));
    ValueId want = predicates[i].value;
    size_t kept = 0;
    for (uint32_t row : result) {
      if (column[row] == want) result[kept++] = row;
    }
    result.resize(kept);
  }
  return result;
}

std::vector<uint32_t> ExecuteScanPlan(const Table& table,
                                      const PredicateSet& predicates,
                                      const ScanPlan& plan) {
  switch (plan.strategy) {
    case ScanStrategy::kAllRows: {
      std::vector<uint32_t> all(table.NumRows());
      std::iota(all.begin(), all.end(), 0);
      return all;
    }
    case ScanStrategy::kEmptyResult:
      return {};
    case ScanStrategy::kPostings:
      return FilterRowsPostings(table, predicates);
    case ScanStrategy::kColumnScan:
      return FilterRowsColumnScan(table, predicates);
  }
  return FilterRowsColumnScan(table, predicates);
}

std::vector<uint32_t> PlannedFilterRows(const Table& table,
                                        const PredicateSet& predicates,
                                        const ScanPlannerOptions& options) {
  ScanPlan plan = PlanScan(table, predicates, options);
  (void)MaybeProbeAlternate(table, options, predicates, &plan);
  // Statistics feedback: time the execution and charge it to the path that
  // actually ran, normalized by that path's cost driver. Only executions
  // that actually train the model pay for the clock: single-predicate
  // postings are unconditional copies (they say nothing about intersection
  // cost), and kAllRows/kEmptyResult are O(1) answers -- none of them may
  // tax the nanoseconds-scale fast path with stopwatch calls.
  bool trains_postings = plan.strategy == ScanStrategy::kPostings &&
                         predicates.size() > 1;
  bool trains_scan = plan.strategy == ScanStrategy::kColumnScan;
  if (!RecordsStats(options) || (!trains_postings && !trains_scan)) {
    return ExecuteScanPlan(table, predicates, plan);
  }
  Stopwatch watch;
  std::vector<uint32_t> result = ExecuteScanPlan(table, predicates, plan);
  double seconds = watch.ElapsedSeconds();
  if (trains_postings) {
    RecordPostingsSample(table, options, plan.estimated_rows, seconds);
  } else {
    RecordScanSample(table, options, table.NumRows(), seconds);
  }
  return result;
}

std::vector<std::vector<uint32_t>> PlannedFilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options) {
  std::vector<std::vector<uint32_t>> out(predicate_sets.size());
  // Selective sets are answered from posting lists; the rest share one pass.
  std::vector<size_t> scan_sets;
  for (size_t q = 0; q < predicate_sets.size(); ++q) {
    const PredicateSet& predicates = *predicate_sets[q];
    ScanPlan plan = PlanScan(table, predicates, options);
    // A probed postings-planned set runs its own timed column scan instead
    // of joining the shared pass, so the probe's sample is attributable; a
    // probed scan-planned set executes postings individually as usual.
    bool probed = MaybeProbeAlternate(table, options, predicates, &plan);
    if (plan.strategy == ScanStrategy::kColumnScan && probed) {
      Stopwatch watch;
      out[q] = ExecuteScanPlan(table, predicates, plan);
      RecordScanSample(table, options, table.NumRows(), watch.ElapsedSeconds());
    } else if (plan.strategy == ScanStrategy::kColumnScan) {
      scan_sets.push_back(q);
    } else if (RecordsStats(options) &&
               plan.strategy == ScanStrategy::kPostings &&
               predicates.size() > 1) {
      // Same single-path rule as PlannedFilterRows: only executions that
      // train the model pay for the clock.
      Stopwatch watch;
      out[q] = ExecuteScanPlan(table, predicates, plan);
      RecordPostingsSample(table, options, plan.estimated_rows,
                           watch.ElapsedSeconds());
    } else {
      out[q] = ExecuteScanPlan(table, predicates, plan);
    }
  }
  if (!scan_sets.empty()) {
    size_t n = table.NumRows();
    Stopwatch watch;
    for (size_t r = 0; r < n; ++r) {
      for (size_t q : scan_sets) {
        if (RowMatches(table, r, *predicate_sets[q])) {
          out[q].push_back(static_cast<uint32_t>(r));
        }
      }
    }
    // The batch shares ONE pass: charge its per-row cost once, normalized
    // by the rows scanned (the planner compares per-set costs, and each
    // set's marginal share of a shared pass is at most one full scan).
    RecordScanSample(table, options, n * scan_sets.size(), watch.ElapsedSeconds());
  }
  return out;
}

}  // namespace vq
