#include "relational/scan_planner.h"

#include <algorithm>
#include <mutex>  // std::call_once for metric-instrument latches (not locking)
#include <numeric>

#include "obs/metrics.h"
#include "storage/index.h"
#include "util/stopwatch.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace vq {

ScanStats& GlobalScanStats() {
  static ScanStats* stats = new ScanStats();  // never destroyed: outlives workers
  return *stats;
}

namespace {

/// The statistics instance that STEERS this plan: the table's own once it is
/// warm on both paths (per_table_stats), else the caller-injected (usually
/// process-wide) instance, else nullptr (fixed cost factor).
ScanStats* PlanningStats(const Table& table, const ScanPlannerOptions& options) {
  if (options.per_table_stats) {
    ScanStats& local = table.index().scan_stats();
    if (local.postings_samples() >= options.table_stats_min_samples &&
        local.scan_samples() >= options.table_stats_min_samples) {
      return &local;
    }
  }
  return options.stats;
}

/// Filter-execution latency by path, fed ONLY from the already-stopwatched
/// statistics samples: the untimed fast paths (single-predicate postings,
/// O(1) plans, statistics off) stay untimed.
obs::LatencyHistogram* FilterHistogram(bool postings) {
  static obs::LatencyHistogram* hists[2] = {
      obs::MetricsRegistry::Global().GetHistogram(obs::MetricsRegistry::WithLabel(
          "vq_scan_filter_seconds", "path", "scan")),
      obs::MetricsRegistry::Global().GetHistogram(obs::MetricsRegistry::WithLabel(
          "vq_scan_filter_seconds", "path", "postings")),
  };
  return hists[postings ? 1 : 0];
}

/// Recording trains the per-table model (when enabled) AND the injected
/// shared one, so a cold table converges to its own statistics while the
/// process-wide fallback keeps learning from every table.
void RecordPostingsSample(const Table& table, const ScanPlannerOptions& options,
                          size_t driver_rows, double seconds) {
  if (options.stats != nullptr) options.stats->RecordPostings(driver_rows, seconds);
  if (options.per_table_stats) {
    table.index().scan_stats().RecordPostings(driver_rows, seconds);
  }
  FilterHistogram(/*postings=*/true)->Record(seconds);
}

void RecordScanSample(const Table& table, const ScanPlannerOptions& options,
                      size_t table_rows, double seconds) {
  if (options.stats != nullptr) options.stats->RecordScan(table_rows, seconds);
  if (options.per_table_stats) {
    table.index().scan_stats().RecordScan(table_rows, seconds);
  }
  FilterHistogram(/*postings=*/false)->Record(seconds);
}

/// True when statistics feedback is active for this call at all (either a
/// shared instance was injected or per-table statistics are on).
bool RecordsStats(const ScanPlannerOptions& options) {
  return options.stats != nullptr || options.per_table_stats;
}

/// Plan-choice counter for `strategy`. The planner is a free function with
/// no owning object to hold instruments, so these live as function-local
/// statics against the process-global registry (which is never destroyed);
/// after the first call each bump is one relaxed atomic add.
obs::Counter* PlanCounter(ScanStrategy strategy) {
  static obs::Counter* counters[4] = {
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "all-rows")),
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "empty")),
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "postings")),
      obs::MetricsRegistry::Global().GetCounter(obs::MetricsRegistry::WithLabel(
          "vq_scan_plans_total", "strategy", "column-scan")),
  };
  return counters[static_cast<size_t>(strategy)];
}

/// Shards dispatched to the scan pool across all parallel fan-outs (the
/// fan-out width counter: each parallel filter adds its shard count).
obs::Counter* FanoutCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "vq_scan_shard_fanout_total");
  return counter;
}

/// Per-shard filter latency under a SAMPLED shard label: the first
/// kShardLabels ordinals get their own series, everything beyond collapses
/// into shard="other" -- a 48-shard table must not mint 48 histogram series.
constexpr size_t kShardLabels = 8;
obs::LatencyHistogram* ShardHistogram(size_t shard) {
  static obs::LatencyHistogram* hists[kShardLabels + 1] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (size_t s = 0; s < kShardLabels; ++s) {
      hists[s] = obs::MetricsRegistry::Global().GetHistogram(
          obs::MetricsRegistry::WithLabel("vq_scan_shard_filter_seconds",
                                          "shard", std::to_string(s)));
    }
    hists[kShardLabels] = obs::MetricsRegistry::Global().GetHistogram(
        obs::MetricsRegistry::WithLabel("vq_scan_shard_filter_seconds",
                                        "shard", "other"));
  });
  return hists[std::min(shard, kShardLabels)];
}

/// Forced-alternate-path exploration, shared by the single and batched
/// funnels: every kProbePeriod-th eligible decision (multi-predicate, both
/// paths runnable, statistics active) flips `plan` to the path the planner
/// did NOT pick. Only executed paths are timed, so without this an outlier
/// streak that clamps the factor starves the disfavored path of samples
/// forever; the probe guarantees both EWMAs keep training. Both paths
/// return identical rows, so a probe can never change a result. Returns
/// true when the plan was flipped.
bool MaybeProbeAlternate(const Table& table, const ScanPlannerOptions& options,
                         const PredicateSet& predicates, ScanPlan* plan) {
  if (options.force_scan || predicates.size() <= 1) return false;
  if (plan->strategy != ScanStrategy::kPostings &&
      plan->strategy != ScanStrategy::kColumnScan) {
    return false;
  }
  // Probe cost must stay comparable to the favored path's. Flipping a scan
  // plan to postings is always cheap (the intersection visits at most the
  // driver rows, a subset of what the scan visits). Flipping a POSTINGS
  // plan to a full column scan costs NumRows/driver_rows times the favored
  // path -- unbounded for selective conjunctions on big tables -- so it is
  // only probed while that ratio is within the factor clamp: beyond
  // kMaxFactor the learned factor saturates and the extra sample could not
  // change any decision anyway, making an expensive probe pure waste.
  if (plan->strategy == ScanStrategy::kPostings &&
      static_cast<double>(table.NumRows()) >
          static_cast<double>(plan->estimated_rows) * ScanStats::kMaxFactor) {
    return false;
  }
  ScanStats* steering = PlanningStats(table, options);
  if (steering == nullptr || !steering->TakeProbe()) return false;
  plan->strategy = plan->strategy == ScanStrategy::kPostings
                       ? ScanStrategy::kColumnScan
                       : ScanStrategy::kPostings;
  static obs::Counter* probes =
      obs::MetricsRegistry::Global().GetCounter("vq_scan_probes_total");
  probes->Increment();
  return true;
}

/// Galloping (exponential-probe) lower bound: first position in [lo, size)
/// with list[pos] >= row. Doubles the step from the cursor before the binary
/// search, so intersecting a short driver against a long list costs
/// O(short * log(long / short)) instead of O(short * log(long)).
size_t GallopLowerBound(std::span<const uint32_t> list, size_t lo, uint32_t row) {
  size_t size = list.size();
  size_t step = 1;
  size_t hi = lo;
  while (hi < size && list[hi] < row) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > size) hi = size;
  const uint32_t* first = list.data() + lo;
  const uint32_t* bound = std::lower_bound(first, list.data() + hi, row);
  return static_cast<size_t>(bound - list.data());
}

/// In-place intersection of sorted `result` with sorted `list` by galloping.
void GallopIntersect(std::vector<uint32_t>* result, std::span<const uint32_t> list) {
  size_t kept = 0;
  size_t cursor = 0;
  for (uint32_t row : *result) {
    cursor = GallopLowerBound(list, cursor, row);
    if (cursor == list.size()) break;
    if (list[cursor] == row) {
      (*result)[kept++] = row;
      ++cursor;
    }
  }
  result->resize(kept);
}

// ----------------------------------------------------- per-shard execution
// Each shard answers the filter over ITS posting lists or ITS slice of the
// table's columns, emitting shard-local ascending row ids (the ScanPartial
// contract). For a single-shard table these are exactly the pre-shard
// global-id paths, so results are bit-identical by construction; for
// multi-shard tables shard-order concatenation restores the global order.

/// Galloping intersection over one shard, shortest shard-local list first.
/// `driver_rows` (optional) receives the shard-local driver list length,
/// the normalizer for this shard's ScanStats sample.
ScanPartial ShardFilterPostings(const ShardIndex& shard,
                                const PredicateSet& predicates,
                                size_t* driver_rows = nullptr) {
  ScanPartial partial{shard.ordinal(), shard.base(), {}};
  std::vector<size_t> order(predicates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return shard.Count(static_cast<size_t>(predicates[a].dim), predicates[a].value) <
           shard.Count(static_cast<size_t>(predicates[b].dim), predicates[b].value);
  });
  std::span<const uint32_t> driver = shard.Postings(
      static_cast<size_t>(predicates[order[0]].dim), predicates[order[0]].value);
  if (driver_rows != nullptr) *driver_rows = driver.size();
  partial.rows.assign(driver.begin(), driver.end());
  for (size_t i = 1; i < order.size() && !partial.rows.empty(); ++i) {
    const EqPredicate& p = predicates[order[i]];
    GallopIntersect(&partial.rows,
                    shard.Postings(static_cast<size_t>(p.dim), p.value));
  }
  return partial;
}

/// Column scan over one shard's row range of the table's contiguous columns.
ScanPartial ShardFilterColumnScan(const Table& table, const ShardIndex& shard,
                                  const PredicateSet& predicates) {
  ScanPartial partial{shard.ordinal(), shard.base(), {}};
  uint32_t base = shard.base();
  uint32_t rows = shard.num_rows();
  if (predicates.empty()) {
    partial.rows.resize(rows);
    std::iota(partial.rows.begin(), partial.rows.end(), 0);
    return partial;
  }
  // First predicate: tight scan over the shard's slice of one code column.
  {
    const ValueId* column =
        table.DimColumn(static_cast<size_t>(predicates[0].dim)).data() + base;
    ValueId want = predicates[0].value;
    for (uint32_t r = 0; r < rows; ++r) {
      if (column[r] == want) partial.rows.push_back(r);
    }
  }
  // Each further predicate refines the survivors against its column.
  for (size_t i = 1; i < predicates.size() && !partial.rows.empty(); ++i) {
    const ValueId* column =
        table.DimColumn(static_cast<size_t>(predicates[i].dim)).data() + base;
    ValueId want = predicates[i].value;
    size_t kept = 0;
    for (uint32_t row : partial.rows) {
      if (column[row] == want) partial.rows[kept++] = row;
    }
    partial.rows.resize(kept);
  }
  return partial;
}

/// One shard's share of `plan`. kEmptyResult never reaches here (handled
/// without touching shards).
ScanPartial ExecuteShard(const Table& table, const ShardIndex& shard,
                         const PredicateSet& predicates, ScanStrategy strategy,
                         size_t* driver_rows = nullptr) {
  switch (strategy) {
    case ScanStrategy::kAllRows: {
      ScanPartial partial{shard.ordinal(), shard.base(), {}};
      partial.rows.resize(shard.num_rows());
      std::iota(partial.rows.begin(), partial.rows.end(), 0);
      return partial;
    }
    case ScanStrategy::kEmptyResult:
      return ScanPartial{shard.ordinal(), shard.base(), {}};
    case ScanStrategy::kPostings:
      return ShardFilterPostings(shard, predicates, driver_rows);
    case ScanStrategy::kColumnScan:
      return ShardFilterColumnScan(table, shard, predicates);
  }
  return ShardFilterColumnScan(table, shard, predicates);
}

/// Empty partials for every shard (the kEmptyResult answer, shaped like any
/// other partial set so consumers never special-case it).
ScanPartials EmptyPartials(const TableIndex& index) {
  ScanPartials partials;
  partials.reserve(index.num_shards());
  for (const ShardIndex& shard : index.shards()) {
    partials.push_back(ScanPartial{shard.ordinal(), shard.base(), {}});
  }
  return partials;
}

ThreadPool* ResolvePool(const ScanPlannerOptions& options) {
  return options.pool != nullptr ? options.pool : &ScanPool();
}

/// True when this call should fan shards out instead of looping them: more
/// than one shard, a pool that can actually parallelize, and a caller that
/// is not itself a worker of that pool (a nested fan-out would block a
/// worker on tasks the saturated pool may never start).
bool ShouldFanOut(const TableIndex& index, ThreadPool* pool) {
  return index.num_shards() > 1 && pool->NumThreads() > 1 &&
         pool->CurrentWorkerIndex() == ThreadPool::kNotAWorker;
}

/// Fans `run_shard(s)` for every shard across `pool` with shard->worker
/// affinity hints, and blocks until THIS call's tasks finish (a private
/// countdown, not pool Wait(): concurrent filters share the pool and must
/// not wait on each other's tasks). Each completed task re-records which
/// worker ran it as the next hint for that shard.
void RunShardFanout(const TableIndex& index, ThreadPool* pool,
                    const std::function<void(size_t)>& run_shard) {
  size_t num_shards = index.num_shards();
  FanoutCounter()->Increment(num_shards);
  Mutex mutex;
  CondVar done;
  size_t remaining = num_shards;  // guarded by `mutex` (GUARDED_BY is
                                  // member-only; locals are not annotatable)
  for (size_t s = 0; s < num_shards; ++s) {
    auto task = [&, s] {
      Stopwatch watch;
      run_shard(s);
      ShardHistogram(s)->Record(watch.ElapsedSeconds());
      size_t worker = pool->CurrentWorkerIndex();
      if (worker != ThreadPool::kNotAWorker) {
        index.set_shard_last_worker(s, static_cast<uint32_t>(worker));
      }
      MutexLock lock(mutex);
      if (--remaining == 0) done.NotifyOne();
    };
    uint32_t hint = index.shard_last_worker(s);
    if (hint == TableIndex::kNoWorker) {
      pool->Submit(std::move(task));
    } else {
      pool->SubmitHinted(hint, std::move(task));
    }
  }
  MutexLock lock(mutex);
  while (remaining != 0) done.Wait(mutex);
}

/// Executes `plan` over every shard into partials: sequentially for
/// single-shard tables (exactly the pre-shard code path), else fanned out
/// across the pool. Parallel shard tasks additionally train their shard's
/// own ScanStats from the observed per-shard cost.
ScanPartials ExecutePlanPartials(const Table& table,
                                 const PredicateSet& predicates,
                                 const ScanPlan& plan,
                                 const ScanPlannerOptions& options) {
  const TableIndex& index = table.index();
  if (plan.strategy == ScanStrategy::kEmptyResult) return EmptyPartials(index);
  ScanPartials partials(index.num_shards());
  ThreadPool* pool = ResolvePool(options);
  if (!ShouldFanOut(index, pool)) {
    for (size_t s = 0; s < index.num_shards(); ++s) {
      partials[s] = ExecuteShard(table, index.shard(s), predicates, plan.strategy);
    }
    return partials;
  }
  bool shard_stats = plan.strategy == ScanStrategy::kPostings ||
                     plan.strategy == ScanStrategy::kColumnScan;
  RunShardFanout(index, pool, [&](size_t s) {
    const ShardIndex& shard = index.shard(s);
    Stopwatch watch;
    size_t driver_rows = 0;
    partials[s] =
        ExecuteShard(table, shard, predicates, plan.strategy, &driver_rows);
    if (!shard_stats) return;
    double seconds = watch.ElapsedSeconds();
    if (plan.strategy == ScanStrategy::kPostings) {
      if (predicates.size() > 1) {
        shard.scan_stats().RecordPostings(std::max<size_t>(driver_rows, 1),
                                          seconds);
      }
    } else {
      shard.scan_stats().RecordScan(std::max<uint32_t>(shard.num_rows(), 1),
                                    seconds);
    }
  });
  return partials;
}

}  // namespace

const char* ScanStrategyName(ScanStrategy strategy) {
  switch (strategy) {
    case ScanStrategy::kAllRows: return "all-rows";
    case ScanStrategy::kEmptyResult: return "empty";
    case ScanStrategy::kPostings: return "postings";
    case ScanStrategy::kColumnScan: return "column-scan";
  }
  return "unknown";
}

ScanPlan PlanScan(const Table& table, const PredicateSet& predicates,
                  const ScanPlannerOptions& options) {
  ScanPlan plan;
  if (predicates.empty()) {
    plan.strategy = ScanStrategy::kAllRows;
    plan.estimated_rows = table.NumRows();
    PlanCounter(plan.strategy)->Increment();
    return plan;
  }
  const TableIndex& index = table.index();
  size_t min_count = table.NumRows();
  int driver = 0;
  for (size_t i = 0; i < predicates.size(); ++i) {
    const EqPredicate& p = predicates[i];
    size_t count = index.Count(static_cast<size_t>(p.dim), p.value);
    if (count == 0) {
      plan.strategy = ScanStrategy::kEmptyResult;
      plan.estimated_rows = 0;
      PlanCounter(plan.strategy)->Increment();
      return plan;
    }
    if (count < min_count) {
      min_count = count;
      driver = static_cast<int>(i);
    }
  }
  plan.estimated_rows = min_count;
  plan.driver = driver;
  if (options.force_scan) {
    plan.strategy = ScanStrategy::kColumnScan;
    PlanCounter(plan.strategy)->Increment();
    return plan;
  }
  // A single predicate is a posting-list copy -- never scan. Conjunctions
  // use postings while the driver list is selective enough that galloping
  // probes beat one comparison per table row. With statistics feedback the
  // ratio comes from the observed EWMA costs instead of the fixed default
  // (the table's own statistics once warm, the shared instance until then).
  ScanStats* stats = PlanningStats(table, options);
  double cost_factor = stats != nullptr ? stats->CostFactor(options.cost_factor)
                                        : options.cost_factor;
  bool selective = static_cast<double>(min_count) * cost_factor <=
                   static_cast<double>(table.NumRows());
  plan.strategy = (predicates.size() == 1 || selective) ? ScanStrategy::kPostings
                                                        : ScanStrategy::kColumnScan;
  PlanCounter(plan.strategy)->Increment();
  return plan;
}

std::vector<uint32_t> FilterRowsPostings(const Table& table,
                                         const PredicateSet& predicates) {
  const TableIndex& index = table.index();
  ScanPartials partials;
  partials.reserve(index.num_shards());
  for (const ShardIndex& shard : index.shards()) {
    partials.push_back(ShardFilterPostings(shard, predicates));
  }
  return MergeScanPartials(std::move(partials));
}

std::vector<uint32_t> FilterRowsColumnScan(const Table& table,
                                           const PredicateSet& predicates) {
  const TableIndex& index = table.index();
  ScanPartials partials;
  partials.reserve(index.num_shards());
  for (const ShardIndex& shard : index.shards()) {
    partials.push_back(ShardFilterColumnScan(table, shard, predicates));
  }
  return MergeScanPartials(std::move(partials));
}

std::vector<uint32_t> ExecuteScanPlan(const Table& table,
                                      const PredicateSet& predicates,
                                      const ScanPlan& plan) {
  const TableIndex& index = table.index();
  if (plan.strategy == ScanStrategy::kEmptyResult) return {};
  ScanPartials partials;
  partials.reserve(index.num_shards());
  for (const ShardIndex& shard : index.shards()) {
    partials.push_back(ExecuteShard(table, shard, predicates, plan.strategy));
  }
  return MergeScanPartials(std::move(partials));
}

ScanPartials PlannedFilterRowsPartials(const Table& table,
                                       const PredicateSet& predicates,
                                       const ScanPlannerOptions& options) {
  ScanPlan plan = PlanScan(table, predicates, options);
  (void)MaybeProbeAlternate(table, options, predicates, &plan);
  // Statistics feedback: time the execution and charge it to the path that
  // actually ran, normalized by that path's cost driver. Only executions
  // that actually train the model pay for the clock: single-predicate
  // postings are unconditional copies (they say nothing about intersection
  // cost), and kAllRows/kEmptyResult are O(1) answers -- none of them may
  // tax the nanoseconds-scale fast path with stopwatch calls. On
  // multi-shard tables the sample is the fan-out's WALL time: the learned
  // cost is the cost the caller actually observes.
  bool trains_postings = plan.strategy == ScanStrategy::kPostings &&
                         predicates.size() > 1;
  bool trains_scan = plan.strategy == ScanStrategy::kColumnScan;
  if (!RecordsStats(options) || (!trains_postings && !trains_scan)) {
    return ExecutePlanPartials(table, predicates, plan, options);
  }
  Stopwatch watch;
  ScanPartials partials = ExecutePlanPartials(table, predicates, plan, options);
  double seconds = watch.ElapsedSeconds();
  if (trains_postings) {
    RecordPostingsSample(table, options, plan.estimated_rows, seconds);
  } else {
    RecordScanSample(table, options, table.NumRows(), seconds);
  }
  return partials;
}

std::vector<uint32_t> PlannedFilterRows(const Table& table,
                                        const PredicateSet& predicates,
                                        const ScanPlannerOptions& options) {
  return MergeScanPartials(PlannedFilterRowsPartials(table, predicates, options));
}

std::vector<ScanPartials> PlannedFilterRowsMultiPartials(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options) {
  std::vector<ScanPartials> out(predicate_sets.size());
  // Selective sets are answered from posting lists; the rest share one pass.
  std::vector<size_t> scan_sets;
  for (size_t q = 0; q < predicate_sets.size(); ++q) {
    const PredicateSet& predicates = *predicate_sets[q];
    ScanPlan plan = PlanScan(table, predicates, options);
    // A probed postings-planned set runs its own timed column scan instead
    // of joining the shared pass, so the probe's sample is attributable; a
    // probed scan-planned set executes postings individually as usual.
    bool probed = MaybeProbeAlternate(table, options, predicates, &plan);
    if (plan.strategy == ScanStrategy::kColumnScan && probed) {
      Stopwatch watch;
      out[q] = ExecutePlanPartials(table, predicates, plan, options);
      RecordScanSample(table, options, table.NumRows(), watch.ElapsedSeconds());
    } else if (plan.strategy == ScanStrategy::kColumnScan) {
      scan_sets.push_back(q);
    } else if (RecordsStats(options) &&
               plan.strategy == ScanStrategy::kPostings &&
               predicates.size() > 1) {
      // Same single-path rule as PlannedFilterRows: only executions that
      // train the model pay for the clock.
      Stopwatch watch;
      out[q] = ExecutePlanPartials(table, predicates, plan, options);
      RecordPostingsSample(table, options, plan.estimated_rows,
                           watch.ElapsedSeconds());
    } else {
      out[q] = ExecutePlanPartials(table, predicates, plan, options);
    }
  }
  if (!scan_sets.empty()) {
    const TableIndex& index = table.index();
    for (size_t q : scan_sets) out[q] = EmptyPartials(index);
    // The shared pass visits each shard once, checking every batched set
    // against each row of that shard -- the per-shard unit of the same
    // one-pass contract the unsharded code kept per table. Multi-shard
    // tables fan the shard passes out like the single-filter path.
    auto scan_shard = [&](size_t s) {
      const ShardIndex& shard = index.shard(s);
      uint32_t base = shard.base();
      uint32_t rows = shard.num_rows();
      for (uint32_t r = 0; r < rows; ++r) {
        for (size_t q : scan_sets) {
          if (RowMatches(table, base + r, *predicate_sets[q])) {
            out[q][s].rows.push_back(r);
          }
        }
      }
    };
    ThreadPool* pool = ResolvePool(options);
    size_t n = table.NumRows();
    Stopwatch watch;
    if (!ShouldFanOut(index, pool)) {
      for (size_t s = 0; s < index.num_shards(); ++s) scan_shard(s);
    } else {
      RunShardFanout(index, pool, [&](size_t s) {
        const ShardIndex& shard = index.shard(s);
        Stopwatch shard_watch;
        scan_shard(s);
        shard.scan_stats().RecordScan(
            std::max<size_t>(size_t{shard.num_rows()} * scan_sets.size(), 1),
            shard_watch.ElapsedSeconds());
      });
    }
    // The batch shares ONE pass: charge its per-row cost once, normalized
    // by the rows scanned (the planner compares per-set costs, and each
    // set's marginal share of a shared pass is at most one full scan).
    RecordScanSample(table, options, n * scan_sets.size(), watch.ElapsedSeconds());
  }
  return out;
}

std::vector<std::vector<uint32_t>> PlannedFilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options) {
  std::vector<ScanPartials> partials =
      PlannedFilterRowsMultiPartials(table, predicate_sets, options);
  std::vector<std::vector<uint32_t>> out(partials.size());
  for (size_t q = 0; q < partials.size(); ++q) {
    out[q] = MergeScanPartials(std::move(partials[q]));
  }
  return out;
}

}  // namespace vq
