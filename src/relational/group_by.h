// Hash group-by aggregation over dimension subsets (the Gamma operator of
// Algorithms 1-3).
#ifndef VQ_RELATIONAL_GROUP_BY_H_
#define VQ_RELATIONAL_GROUP_BY_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace vq {

/// Packs up to four dimension codes (each < 2^16) into one 64-bit key.
/// The fact-catalog build enforces these limits; voice-query dimensions are
/// small categorical domains.
inline constexpr size_t kMaxGroupDims = 4;
inline constexpr ValueId kMaxPackableCode = (1u << 16) - 1;

/// Packs `codes` (one per grouped dimension, in dimension order) into a key.
uint64_t PackGroupKey(std::span<const ValueId> codes);

/// One output group of a group-by: its packed key and aggregates.
struct AggregateGroup {
  uint64_t key = 0;
  double sum = 0.0;
  double count = 0.0;  // weighted count
};

/// \brief Result of a group-by: groups in first-seen order plus an index.
struct GroupByResult {
  std::vector<AggregateGroup> groups;
  std::unordered_map<uint64_t, uint32_t> index;  // key -> position in groups

  double AverageOf(uint64_t key) const;
};

/// Groups `row_ids` of `table` by the dimension columns in `dims`
/// (at most kMaxGroupDims), aggregating SUM and COUNT of
/// `values[i]` * `weights[i]` where index i aligns with `row_ids`.
/// Pass an empty `values` to aggregate counts only; empty `weights` means
/// unit weights.
GroupByResult GroupBy(const Table& table, std::span<const uint32_t> row_ids,
                      const std::vector<int>& dims, std::span<const double> values,
                      std::span<const double> weights);

/// Number of distinct value combinations over `dims` among `row_ids`.
/// This is the fact-count statistic M(g) of the paper's cost model
/// (Section VI-C: "the number of facts simply equals the number of distinct
/// value combinations in the dimension columns they restrict").
size_t CountDistinctCombos(const Table& table, std::span<const uint32_t> row_ids,
                           const std::vector<int>& dims);

}  // namespace vq

#endif  // VQ_RELATIONAL_GROUP_BY_H_
