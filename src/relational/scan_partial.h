// Shard-local partial results of a conjunctive filter.
//
// The sharded scan planner answers a filter per shard and merges afterwards;
// ScanPartial is that per-shard unit as a first-class, composable value so
// downstream layers can consume shard results before (or instead of) the
// merge -- the serving layer's batch solves do, and the planned incremental
// ingest path (ROADMAP item 3) will compose delta-shard partials with main
// ones the same way.
//
// Contract: `rows` holds SHARD-LOCAL row ids, strictly ascending; the global
// id of entry k is `base + rows[k]`. A full result set is a vector of
// partials in ascending shard order covering each shard exactly once; since
// shard row ranges are contiguous and disjoint, concatenating the
// base-offset rows in shard order yields globally ascending ids --
// bit-identical to what the unsharded filter returned.
#ifndef VQ_RELATIONAL_SCAN_PARTIAL_H_
#define VQ_RELATIONAL_SCAN_PARTIAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vq {

/// One shard's share of a filter answer (see file comment for the id
/// contract).
struct ScanPartial {
  uint32_t shard = 0;  ///< shard ordinal within the table
  uint32_t base = 0;   ///< first global row id of the shard
  std::vector<uint32_t> rows;  ///< shard-local matching rows, ascending
};

/// A filter answer as per-shard partials, ascending by shard ordinal.
using ScanPartials = std::vector<ScanPartial>;

/// Total matching rows across all partials.
size_t TotalRows(const ScanPartials& partials);

/// Appends `partial`'s rows to `out` as global ids (base + local).
void AppendGlobalRows(const ScanPartial& partial, std::vector<uint32_t>* out);

/// Flattens partials (ascending shard order) into one globally ascending row
/// id vector. Takes the partials by value: the single-shard case -- every
/// pre-existing table -- moves the row vector straight through with no copy.
std::vector<uint32_t> MergeScanPartials(ScanPartials partials);

}  // namespace vq

#endif  // VQ_RELATIONAL_SCAN_PARTIAL_H_
