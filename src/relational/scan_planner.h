// Index-aware planning for conjunctive equality filters.
//
// Every subset the system materializes -- preprocessor query scopes, the
// serving layer's on-demand misses, instance construction -- funnels through
// FilterRows/FilterRowsMulti (relational/predicate.h). The planner answers
// those through the table's inverted index (storage/index.h) when posting
// lists are selective, by galloping intersection of the sorted lists; when
// the per-(dim,value) counts say a pass over the columns is cheaper (barely
// selective predicates), it falls back to a vectorized column scan. Both
// paths emit row ids in ascending order, so results are bit-identical to the
// seed row-at-a-time loop (tests/relational/scan_planner_test.cc proves this
// by property testing all three).
#ifndef VQ_RELATIONAL_SCAN_PLANNER_H_
#define VQ_RELATIONAL_SCAN_PLANNER_H_

#include <cstdint>
#include <vector>

#include "relational/predicate.h"
#include "storage/table.h"

namespace vq {

/// How a conjunctive filter will be executed.
enum class ScanStrategy {
  kAllRows,      ///< no predicates: emit every row id
  kEmptyResult,  ///< some predicate's value occurs in no row (O(1) answer)
  kPostings,     ///< galloping intersection of sorted posting lists
  kColumnScan,   ///< vectorized column scan (the fallback path)
};

const char* ScanStrategyName(ScanStrategy strategy);

/// One planned filter: the chosen strategy plus the index statistics that
/// drove the decision (exposed for tests and the scan bench).
struct ScanPlan {
  ScanStrategy strategy = ScanStrategy::kColumnScan;
  /// Length of the shortest posting list among the predicates; an upper
  /// bound on (and estimate of) the result size.
  size_t estimated_rows = 0;
  /// Index into the predicate set of the shortest posting list (the
  /// intersection driver); -1 for kAllRows/kEmptyResult.
  int driver = -1;
};

/// Planner knobs (defaults tuned by bench/scan_throughput.cpp).
struct ScanPlannerOptions {
  /// Posting intersection is chosen when `shortest posting list *
  /// cost_factor <= table rows` (each driver row costs ~one galloping probe
  /// per extra predicate versus ~one comparison per table row for the scan).
  /// A single predicate always uses its posting list: the answer is a copy.
  double cost_factor = 4.0;
  /// Forces kColumnScan (tests/benches measuring the fallback path).
  bool force_scan = false;
};

/// Plans one conjunction against `table` (builds the table index on first
/// use; the build is one pass per dimension, amortized over all queries).
ScanPlan PlanScan(const Table& table, const PredicateSet& predicates,
                  const ScanPlannerOptions& options = {});

/// Executes `plan` for the predicates it was planned from.
std::vector<uint32_t> ExecuteScanPlan(const Table& table,
                                      const PredicateSet& predicates,
                                      const ScanPlan& plan);

/// Plan + execute in one call (what FilterRows routes through).
std::vector<uint32_t> PlannedFilterRows(const Table& table,
                                        const PredicateSet& predicates,
                                        const ScanPlannerOptions& options = {});

/// Batched variant behind FilterRowsMulti: predicate sets whose plan says
/// kColumnScan share ONE pass over the table (the serving layer's batched
/// on-demand contract), while selective sets are answered individually from
/// posting lists.
std::vector<std::vector<uint32_t>> PlannedFilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options = {});

/// The two execution paths, exposed for equivalence tests and benches.
/// Postings: galloping intersection, shortest list first. Scan: one column
/// at a time, first predicate's matches refined by each further column.
std::vector<uint32_t> FilterRowsPostings(const Table& table,
                                         const PredicateSet& predicates);
std::vector<uint32_t> FilterRowsColumnScan(const Table& table,
                                           const PredicateSet& predicates);

}  // namespace vq

#endif  // VQ_RELATIONAL_SCAN_PLANNER_H_
