// Index-aware planning for conjunctive equality filters.
//
// Every subset the system materializes -- preprocessor query scopes, the
// serving layer's on-demand misses, instance construction -- funnels through
// FilterRows/FilterRowsMulti (relational/predicate.h). The planner answers
// those through the table's inverted index (storage/index.h) when posting
// lists are selective, by galloping intersection of the sorted lists; when
// the per-(dim,value) counts say a pass over the columns is cheaper (barely
// selective predicates), it falls back to a vectorized column scan. Both
// paths emit row ids in ascending order, so results are bit-identical to the
// seed row-at-a-time loop (tests/relational/scan_planner_test.cc proves this
// by property testing all three).
//
// Since the sharded-storage refactor a filter executes PER SHARD: each shard
// answers over its own posting lists (or its slice of the columns) into a
// ScanPartial (relational/scan_partial.h), and multi-shard tables fan the
// shard tasks across the scan pool (util/thread_pool.h) with shard->worker
// affinity hints before merging the partials in shard order -- which keeps
// results bit-identical to the single-shard path
// (tests/relational/sharded_scan_test.cc property-tests this across shard
// counts).
#ifndef VQ_RELATIONAL_SCAN_PLANNER_H_
#define VQ_RELATIONAL_SCAN_PLANNER_H_

#include <cstdint>
#include <vector>

#include "relational/predicate.h"
#include "relational/scan_partial.h"
#include "storage/table.h"
#include "util/scan_stats.h"

namespace vq {

class ThreadPool;

/// Process-wide statistics instance: FilterRows/FilterRowsMulti (the funnel
/// every subsystem materializes subsets through) record into and plan from
/// it, so the whole serving fleet shares one learned cost model -- and new
/// tables plan from it until their own per-table statistics (hung off the
/// lazily built TableIndex, see ScanPlannerOptions::per_table_stats) have
/// enough samples. bench/scan_throughput.cpp reports its state into
/// BENCH_scan.json.
ScanStats& GlobalScanStats();

/// How a conjunctive filter will be executed.
enum class ScanStrategy {
  kAllRows,      ///< no predicates: emit every row id
  kEmptyResult,  ///< some predicate's value occurs in no row (O(1) answer)
  kPostings,     ///< galloping intersection of sorted posting lists
  kColumnScan,   ///< vectorized column scan (the fallback path)
};

const char* ScanStrategyName(ScanStrategy strategy);

/// One planned filter: the chosen strategy plus the index statistics that
/// drove the decision (exposed for tests and the scan bench).
struct ScanPlan {
  ScanStrategy strategy = ScanStrategy::kColumnScan;
  /// Length of the shortest posting list among the predicates; an upper
  /// bound on (and estimate of) the result size.
  size_t estimated_rows = 0;
  /// Index into the predicate set of the shortest posting list (the
  /// intersection driver); -1 for kAllRows/kEmptyResult.
  int driver = -1;
};

/// Planner knobs (defaults tuned by bench/scan_throughput.cpp).
struct ScanPlannerOptions {
  /// Posting intersection is chosen when `shortest posting list *
  /// cost_factor <= table rows` (each driver row costs ~one galloping probe
  /// per extra predicate versus ~one comparison per table row for the scan).
  /// A single predicate always uses its posting list: the answer is a copy.
  /// When `stats` is set, this value only seeds the decision until both
  /// paths have been observed; afterwards stats->CostFactor() replaces it.
  double cost_factor = 4.0;
  /// Forces kColumnScan (tests/benches measuring the fallback path).
  bool force_scan = false;
  /// Statistics feedback: PlanScan draws its cost factor from here and
  /// PlannedFilterRows/PlannedFilterRowsMulti record observed execution
  /// costs back. nullptr keeps the fixed-cost_factor behavior (tests that
  /// assert specific plans stay deterministic). When statistics are active,
  /// every ScanStats::kProbePeriod-th eligible multi-predicate filter
  /// executes the path the planner disfavored (identical results, see
  /// ScanStats::TakeProbe), so a clamped factor can always recover.
  ScanStats* stats = nullptr;
  /// Prefer the table's own statistics (TableIndex::scan_stats()) over
  /// `stats` once that table has at least `table_stats_min_samples` on BOTH
  /// paths. A process-wide EWMA blends tables of very different row counts
  /// -- a tiny table's cheap scans would lower the learned factor a huge
  /// table then plans with -- so the funnel (FilterRows/FilterRowsMulti)
  /// turns this on: recording always trains the per-table AND the shared
  /// statistics, planning uses the per-table model as soon as it is warm and
  /// the shared one as the cold-start fallback. Off by default so tests that
  /// inject a specific ScanStats stay deterministic.
  bool per_table_stats = false;
  uint64_t table_stats_min_samples = 16;
  /// Pool for the multi-shard fan-out; nullptr uses the process-wide
  /// ScanPool(). Benches inject fixed-size pools here to measure the
  /// rows x threads scaling curve; tests inject small pools to exercise the
  /// parallel merge deterministically on any machine. Single-shard tables
  /// never touch a pool.
  ThreadPool* pool = nullptr;
};

/// Plans one conjunction against `table` (builds the table index on first
/// use; the build is one pass per dimension, amortized over all queries).
ScanPlan PlanScan(const Table& table, const PredicateSet& predicates,
                  const ScanPlannerOptions& options = {});

/// Executes `plan` for the predicates it was planned from (per shard,
/// sequentially, merged -- the parallel path lives in the Planned* calls).
std::vector<uint32_t> ExecuteScanPlan(const Table& table,
                                      const PredicateSet& predicates,
                                      const ScanPlan& plan);

/// Plan + execute in one call (what FilterRows routes through).
std::vector<uint32_t> PlannedFilterRows(const Table& table,
                                        const PredicateSet& predicates,
                                        const ScanPlannerOptions& options = {});

/// Plan + execute, returning the per-shard partials UNMERGED (ascending
/// shard order, one entry per shard). The composable form consumers that
/// want shard-local results build on; PlannedFilterRows is exactly
/// MergeScanPartials() of this.
ScanPartials PlannedFilterRowsPartials(const Table& table,
                                       const PredicateSet& predicates,
                                       const ScanPlannerOptions& options = {});

/// Batched variant behind FilterRowsMulti: predicate sets whose plan says
/// kColumnScan share ONE pass over the table (the serving layer's batched
/// on-demand contract) -- parallelized across shards on multi-shard tables
/// -- while selective sets are answered individually from posting lists.
std::vector<std::vector<uint32_t>> PlannedFilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options = {});

/// Batched variant returning per-set, per-shard partials (out[q][s] is
/// predicate set q's answer on shard s). What EngineHost's batch solves
/// consume directly.
std::vector<ScanPartials> PlannedFilterRowsMultiPartials(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options = {});

/// The two execution paths, exposed for equivalence tests and benches.
/// Postings: per-shard galloping intersection, shortest list first. Scan:
/// one column at a time per shard, first predicate's matches refined by each
/// further column. Both sequential over shards.
std::vector<uint32_t> FilterRowsPostings(const Table& table,
                                         const PredicateSet& predicates);
std::vector<uint32_t> FilterRowsColumnScan(const Table& table,
                                           const PredicateSet& predicates);

}  // namespace vq

#endif  // VQ_RELATIONAL_SCAN_PLANNER_H_
