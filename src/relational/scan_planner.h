// Index-aware planning for conjunctive equality filters.
//
// Every subset the system materializes -- preprocessor query scopes, the
// serving layer's on-demand misses, instance construction -- funnels through
// FilterRows/FilterRowsMulti (relational/predicate.h). The planner answers
// those through the table's inverted index (storage/index.h) when posting
// lists are selective, by galloping intersection of the sorted lists; when
// the per-(dim,value) counts say a pass over the columns is cheaper (barely
// selective predicates), it falls back to a vectorized column scan. Both
// paths emit row ids in ascending order, so results are bit-identical to the
// seed row-at-a-time loop (tests/relational/scan_planner_test.cc proves this
// by property testing all three).
#ifndef VQ_RELATIONAL_SCAN_PLANNER_H_
#define VQ_RELATIONAL_SCAN_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "relational/predicate.h"
#include "storage/table.h"

namespace vq {

/// \brief Online planner statistics: EWMA of the observed per-row costs of
/// the two execution paths, fed back into the postings-vs-scan decision.
///
/// The fixed cost_factor of 4 encodes "one galloping probe costs about four
/// row comparisons" -- true on the machine it was tuned on, wrong elsewhere
/// (cache sizes, gather latency and branch predictors move the ratio).
/// PlannedFilterRows times every execution it runs and records
/// seconds-per-driver-row (postings) or seconds-per-table-row (scan); the
/// learned cost factor is the ratio of the two EWMAs, so the planner adapts
/// to the hardware it is actually running on. All methods are thread-safe
/// and lock-free (relaxed atomics + CAS on the EWMAs): the filter funnel is
/// on every serving worker's path, so the shared statistics must never
/// serialize it. A torn read across the two EWMAs only skews one heuristic
/// decision, never correctness -- both execution paths return identical
/// rows.
class ScanStats {
 public:
  /// EWMA smoothing weight per sample; small enough that one descheduled
  /// outlier execution cannot flip the planner.
  static constexpr double kAlpha = 0.05;
  /// Learned-factor clamp: keeps a cold or pathological EWMA pair from
  /// planning postings for unselective predicates (or never using them).
  static constexpr double kMinFactor = 1.0;
  static constexpr double kMaxFactor = 64.0;

  void RecordPostings(size_t driver_rows, double seconds);
  void RecordScan(size_t table_rows, double seconds);

  /// The adapted cost factor, clamped to [kMinFactor, kMaxFactor]; returns
  /// `fallback` until BOTH paths have at least one sample (a lone EWMA says
  /// nothing about the ratio).
  double CostFactor(double fallback) const;

  uint64_t postings_samples() const;
  uint64_t scan_samples() const;
  /// Current EWMAs in nanoseconds per (driver|table) row; 0 before samples.
  double postings_ns_per_row() const;
  double scan_ns_per_row() const;

 private:
  /// 0.0 doubles as "no sample yet" (a real observation is never exactly 0:
  /// Record* rejects non-positive seconds).
  static void RecordInto(std::atomic<double>* ewma, std::atomic<uint64_t>* samples,
                         size_t rows, double seconds);

  std::atomic<double> ewma_postings_seconds_per_row_{0.0};
  std::atomic<double> ewma_scan_seconds_per_row_{0.0};
  std::atomic<uint64_t> postings_samples_{0};
  std::atomic<uint64_t> scan_samples_{0};
};

/// Process-wide statistics instance: FilterRows/FilterRowsMulti (the funnel
/// every subsystem materializes subsets through) record into and plan from
/// it, so the whole serving fleet shares one learned cost model.
/// bench/scan_throughput.cpp reports its state into BENCH_scan.json.
ScanStats& GlobalScanStats();

/// How a conjunctive filter will be executed.
enum class ScanStrategy {
  kAllRows,      ///< no predicates: emit every row id
  kEmptyResult,  ///< some predicate's value occurs in no row (O(1) answer)
  kPostings,     ///< galloping intersection of sorted posting lists
  kColumnScan,   ///< vectorized column scan (the fallback path)
};

const char* ScanStrategyName(ScanStrategy strategy);

/// One planned filter: the chosen strategy plus the index statistics that
/// drove the decision (exposed for tests and the scan bench).
struct ScanPlan {
  ScanStrategy strategy = ScanStrategy::kColumnScan;
  /// Length of the shortest posting list among the predicates; an upper
  /// bound on (and estimate of) the result size.
  size_t estimated_rows = 0;
  /// Index into the predicate set of the shortest posting list (the
  /// intersection driver); -1 for kAllRows/kEmptyResult.
  int driver = -1;
};

/// Planner knobs (defaults tuned by bench/scan_throughput.cpp).
struct ScanPlannerOptions {
  /// Posting intersection is chosen when `shortest posting list *
  /// cost_factor <= table rows` (each driver row costs ~one galloping probe
  /// per extra predicate versus ~one comparison per table row for the scan).
  /// A single predicate always uses its posting list: the answer is a copy.
  /// When `stats` is set, this value only seeds the decision until both
  /// paths have been observed; afterwards stats->CostFactor() replaces it.
  double cost_factor = 4.0;
  /// Forces kColumnScan (tests/benches measuring the fallback path).
  bool force_scan = false;
  /// Statistics feedback: PlanScan draws its cost factor from here and
  /// PlannedFilterRows/PlannedFilterRowsMulti record observed execution
  /// costs back. nullptr keeps the fixed-cost_factor behavior (tests that
  /// assert specific plans stay deterministic).
  ScanStats* stats = nullptr;
};

/// Plans one conjunction against `table` (builds the table index on first
/// use; the build is one pass per dimension, amortized over all queries).
ScanPlan PlanScan(const Table& table, const PredicateSet& predicates,
                  const ScanPlannerOptions& options = {});

/// Executes `plan` for the predicates it was planned from.
std::vector<uint32_t> ExecuteScanPlan(const Table& table,
                                      const PredicateSet& predicates,
                                      const ScanPlan& plan);

/// Plan + execute in one call (what FilterRows routes through).
std::vector<uint32_t> PlannedFilterRows(const Table& table,
                                        const PredicateSet& predicates,
                                        const ScanPlannerOptions& options = {});

/// Batched variant behind FilterRowsMulti: predicate sets whose plan says
/// kColumnScan share ONE pass over the table (the serving layer's batched
/// on-demand contract), while selective sets are answered individually from
/// posting lists.
std::vector<std::vector<uint32_t>> PlannedFilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets,
    const ScanPlannerOptions& options = {});

/// The two execution paths, exposed for equivalence tests and benches.
/// Postings: galloping intersection, shortest list first. Scan: one column
/// at a time, first predicate's matches refined by each further column.
std::vector<uint32_t> FilterRowsPostings(const Table& table,
                                         const PredicateSet& predicates);
std::vector<uint32_t> FilterRowsColumnScan(const Table& table,
                                           const PredicateSet& predicates);

}  // namespace vq

#endif  // VQ_RELATIONAL_SCAN_PLANNER_H_
