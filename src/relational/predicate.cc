#include "relational/predicate.h"

#include <algorithm>

#include "relational/scan_planner.h"

namespace vq {

Result<EqPredicate> MakePredicate(const Table& table, const std::string& dim_name,
                                  const std::string& value) {
  int dim = table.DimIndex(dim_name);
  if (dim < 0) {
    return Status::NotFound("dimension column '" + dim_name + "' not in table '" +
                            table.name() + "'");
  }
  auto code = table.dict(static_cast<size_t>(dim)).Find(value);
  if (!code.has_value()) {
    return Status::NotFound("value '" + value + "' not in column '" + dim_name + "'");
  }
  return EqPredicate{dim, *code};
}

Status NormalizePredicates(PredicateSet* predicates) {
  std::sort(predicates->begin(), predicates->end(),
            [](const EqPredicate& a, const EqPredicate& b) {
              return a.dim != b.dim ? a.dim < b.dim : a.value < b.value;
            });
  for (size_t i = 1; i < predicates->size(); ++i) {
    if ((*predicates)[i].dim == (*predicates)[i - 1].dim) {
      return Status::InvalidArgument("duplicate predicate on dimension " +
                                     std::to_string((*predicates)[i].dim));
    }
  }
  return Status::OK();
}

bool RowMatches(const Table& table, size_t row, const PredicateSet& predicates) {
  for (const auto& p : predicates) {
    if (table.DimCode(row, static_cast<size_t>(p.dim)) != p.value) return false;
  }
  return true;
}

std::vector<uint32_t> FilterRows(const Table& table, const PredicateSet& predicates) {
  // Planner-routed since the indexed-scan refactor: posting-list
  // intersection when selective, vectorized column scan otherwise. Both
  // paths return exactly what the seed row-at-a-time loop returned. The
  // funnel feeds the planner statistics -- the table's own model once warm,
  // the process-wide one as the cold-start fallback -- so the
  // postings-vs-scan threshold adapts to observed costs without tables of
  // very different row counts skewing each other (plan changes never change
  // results, only which identical-output path runs).
  ScanPlannerOptions options;
  options.stats = &GlobalScanStats();
  options.per_table_stats = true;
  return PlannedFilterRows(table, predicates, options);
}

std::vector<std::vector<uint32_t>> FilterRowsMulti(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets) {
  ScanPlannerOptions options;
  options.stats = &GlobalScanStats();
  options.per_table_stats = true;
  return PlannedFilterRowsMulti(table, predicate_sets, options);
}

std::vector<ScanPartials> FilterRowsMultiPartials(
    const Table& table, const std::vector<const PredicateSet*>& predicate_sets) {
  ScanPlannerOptions options;
  options.stats = &GlobalScanStats();
  options.per_table_stats = true;
  return PlannedFilterRowsMultiPartials(table, predicate_sets, options);
}

bool IsSubsetOf(const PredicateSet& subset, const PredicateSet& superset) {
  for (const auto& p : subset) {
    bool found = false;
    for (const auto& q : superset) {
      if (p == q) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string PredicatesToString(const Table& table, const PredicateSet& predicates) {
  if (predicates.empty()) return "<all rows>";
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out += " AND ";
    const auto& p = predicates[i];
    out += table.DimName(static_cast<size_t>(p.dim));
    out += "=";
    out += table.dict(static_cast<size_t>(p.dim)).Lookup(p.value);
  }
  return out;
}

std::string PredicatesKey(const PredicateSet& predicates) {
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += std::to_string(predicates[i].dim);
    out.push_back(':');
    out += std::to_string(predicates[i].value);
  }
  return out;
}

}  // namespace vq
