// The runtime voice-query engine (Figure 2's query path): speech
// recognition is out of scope, the rest of the pipeline -- text to query,
// store lookup, query to speech -- is implemented here.
#ifndef VQ_ENGINE_VOICE_ENGINE_H_
#define VQ_ENGINE_VOICE_ENGINE_H_

#include <memory>
#include <string>

#include "engine/preprocessor.h"
#include "engine/speech_store.h"
#include "nlu/classifier.h"
#include "nlu/extractor.h"

namespace vq {

/// \brief Answers voice requests from the pre-computed store.
class VoiceQueryEngine {
 public:
  /// Runs pre-processing for `config` over `table` and wires up the NLU
  /// front end. The table must outlive the engine.
  static Result<VoiceQueryEngine> Build(const Table* table, Configuration config,
                                        const PreprocessOptions& options,
                                        PreprocessStats* stats = nullptr);

  struct Response {
    RequestType type = RequestType::kOther;
    std::string text;
    /// Run-time cost of answering: NLU + store lookup (no optimization!).
    double lookup_seconds = 0.0;
    /// The stored speech used, if any.
    const StoredSpeech* speech = nullptr;
    /// True if the extracted query had an exact pre-computed match.
    bool exact_match = false;
  };

  /// Handles one request string: classifies it, then answers data-access
  /// queries from the store (help/repeat handled inline, like the paper's
  /// deployed application).
  Response Answer(const std::string& request);

  const SpeechStore& store() const { return store_; }
  QueryExtractor* mutable_extractor() { return extractor_.get(); }
  const Table& table() const { return *table_; }

 private:
  VoiceQueryEngine() = default;

  const Table* table_ = nullptr;
  Configuration config_;
  SpeechStore store_;
  std::unique_ptr<QueryExtractor> extractor_;
  std::unique_ptr<RequestClassifier> classifier_;
  std::string last_speech_text_;
};

}  // namespace vq

#endif  // VQ_ENGINE_VOICE_ENGINE_H_
