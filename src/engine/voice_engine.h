// The runtime voice-query engine (Figure 2's query path): speech
// recognition is out of scope, the rest of the pipeline -- text to query,
// store lookup, query to speech -- is implemented here.
#ifndef VQ_ENGINE_VOICE_ENGINE_H_
#define VQ_ENGINE_VOICE_ENGINE_H_

#include <memory>
#include <string>

#include "util/sync.h"

#include "engine/preprocessor.h"
#include "engine/speech_store.h"
#include "nlu/classifier.h"
#include "nlu/extractor.h"

namespace vq {

/// \brief Answers voice requests from the pre-computed store.
///
/// Thread-safety contract: after Build() (and any AddTargetSynonym /
/// AddValueSynonym calls via mutable_extractor(), or store mutations via
/// mutable_store()) have completed, the engine is immutable and
/// `Answer(request, session) const` may be called from any number of threads
/// concurrently -- classification, extraction and store lookup only read the
/// vocabulary and the speech index. The caveats:
///   * each thread (or each user session) must pass its own Session object;
///     sessions are not internally synchronized,
///   * the stateful convenience overload `Answer(request)` serializes its
///     callers on an internal mutex protecting the shared session -- safe,
///     but a concurrency bottleneck; concurrent servers should pass
///     per-caller Sessions instead,
///   * mutable_extractor() / mutable_store() must not be used once
///     concurrent answering has started.
/// The serving layer (src/serve/) relies on this contract to share one
/// engine across all of its workers.
class VoiceQueryEngine {
 public:
  /// Runs pre-processing for `config` over `table` and wires up the NLU
  /// front end. The table must outlive the engine.
  static Result<VoiceQueryEngine> Build(const Table* table, Configuration config,
                                        const PreprocessOptions& options,
                                        PreprocessStats* stats = nullptr);

  /// Wires up an engine around an ALREADY computed speech store, skipping
  /// pre-processing entirely -- the zero-copy snapshot load path
  /// (storage/snapshot.cc), where the store was optimized by a previous
  /// process and deserialized. The table must outlive the engine and must
  /// be the table the store's value ids refer to.
  static VoiceQueryEngine FromStore(const Table* table, Configuration config,
                                    SpeechStore store);

  struct Response {
    RequestType type = RequestType::kOther;
    std::string text;
    /// Run-time cost of answering: NLU + store lookup (no optimization!).
    double lookup_seconds = 0.0;
    /// The stored speech used, if any.
    const StoredSpeech* speech = nullptr;
    /// True if the extracted query had an exact pre-computed match.
    bool exact_match = false;
  };

  /// Per-conversation state ("repeat that" memory). One per user session.
  struct Session {
    std::string last_speech_text;
  };

  /// Handles one request string: classifies it, then answers data-access
  /// queries from the store (help/repeat handled inline, like the paper's
  /// deployed application). `session` may be nullptr, in which case repeat
  /// requests report that there is nothing to repeat. Thread-safe for
  /// concurrent calls with distinct sessions (see class comment).
  Response Answer(const std::string& request, Session* session) const;

  /// Convenience overload backed by one internal session. Callers are
  /// serialized on an internal mutex, so concurrent use is safe (though the
  /// shared "repeat that" memory is then interleaved across callers).
  Response Answer(const std::string& request);

  /// Grounds a classified request into a store-keyed query, applying the
  /// deployed app's default: with no target extracted, queries fall back to
  /// the first configured target (so "cancellations?"-style requests work).
  VoiceQuery GroundQuery(const ClassifiedRequest& classified) const;

  /// The help text spoken for RequestType::kHelp.
  std::string HelpText() const;

  /// Canned responses shared with the serving layer, so engine and service
  /// never diverge for the same request.
  static const char* NothingToRepeatText() { return "There is nothing to repeat yet."; }
  static const char* NotUnderstoodText() {
    return "Sorry, I did not understand. Ask for help to hear examples.";
  }
  static const char* NoSummaryText() {
    return "I have no summary matching that question.";
  }
  static const char* TimedOutText() {
    return "Sorry, that took too long to answer. Please try again.";
  }
  static const char* OverloadedText() {
    return "Sorry, I am handling too many questions right now. "
           "Please try again in a moment.";
  }

  const SpeechStore& store() const { return store_; }
  const RequestClassifier& classifier() const { return *classifier_; }
  const QueryExtractor& extractor() const { return *extractor_; }
  const Configuration& config() const { return config_; }
  QueryExtractor* mutable_extractor() { return extractor_.get(); }
  /// Pre-serving store mutation (e.g. DatasetRegistry reloading persisted
  /// on-demand speeches); see the thread-safety contract above.
  SpeechStore* mutable_store() { return &store_; }
  const Table& table() const { return *table_; }

 private:
  VoiceQueryEngine() = default;

  const Table* table_ = nullptr;
  Configuration config_;
  SpeechStore store_;
  std::unique_ptr<QueryExtractor> extractor_;
  std::unique_ptr<RequestClassifier> classifier_;
  /// Guards default_session_ for the stateful Answer(request) overload.
  /// Held by pointer so the engine stays movable (vq::Mutex is not).
  std::unique_ptr<Mutex> default_session_mutex_ = std::make_unique<Mutex>();
  Session default_session_ GUARDED_BY(*default_session_mutex_);
};

}  // namespace vq

#endif  // VQ_ENGINE_VOICE_ENGINE_H_
