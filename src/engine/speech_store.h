// Pre-computed speech store with most-specific-containing-subset lookup.
//
// Section III: "If a summary was generated for the extracted target column
// and for the data subset defined by the extracted predicates, the
// corresponding speech is vocalized. Otherwise ... the speech describing the
// most specific data subset that contains the one referenced in the query is
// used. More precisely, considering predicates Q extracted from the query,
// we select a speech summarizing a data subset defined by predicates S such
// that S is a subset of Q and |S intersect Q| is maximal."
#ifndef VQ_ENGINE_SPEECH_STORE_H_
#define VQ_ENGINE_SPEECH_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/problem_generator.h"
#include "speech/speech.h"
#include "util/json.h"
#include "util/status.h"

namespace vq {

/// One pre-computed speech keyed by its query.
struct StoredSpeech {
  VoiceQuery query;
  Speech speech;
};

/// \brief In-memory index of pre-computed speeches.
class SpeechStore {
 public:
  /// Inserts (or replaces) the speech for its query.
  void Put(StoredSpeech speech);

  /// Exact lookup; nullptr if the precise query was not pre-processed.
  const StoredSpeech* FindExact(const VoiceQuery& query) const;

  /// The paper's fallback: among stored speeches for the same target whose
  /// predicate set S satisfies S subseteq Q, the one maximizing |S|.
  /// Ties broken deterministically (lowest key). Falls back to nullptr only
  /// if not even the empty-predicate speech exists for the target.
  const StoredSpeech* FindBest(const VoiceQuery& query) const;

  size_t size() const { return speeches_.size(); }

  /// All stored speeches in insertion order (for inspection/benches).
  const std::vector<StoredSpeech>& speeches() const { return speeches_; }

  /// JSON round-trip (decoded strings, so a reloaded store does not depend
  /// on dictionary code assignment). `table` re-encodes predicate values.
  Json ToJson(const Table& table) const;
  static Result<SpeechStore> FromJson(const Json& json, const Table& table);

 private:
  std::vector<StoredSpeech> speeches_;
  std::unordered_map<std::string, size_t> index_;  // query key -> position
};

}  // namespace vq

#endif  // VQ_ENGINE_SPEECH_STORE_H_
