#include "engine/speech_store.h"

#include <algorithm>

namespace vq {

void SpeechStore::Put(StoredSpeech speech) {
  std::string key = speech.query.Key();
  auto it = index_.find(key);
  if (it != index_.end()) {
    speeches_[it->second] = std::move(speech);
    return;
  }
  index_.emplace(std::move(key), speeches_.size());
  speeches_.push_back(std::move(speech));
}

const StoredSpeech* SpeechStore::FindExact(const VoiceQuery& query) const {
  auto it = index_.find(query.Key());
  if (it == index_.end()) return nullptr;
  return &speeches_[it->second];
}

const StoredSpeech* SpeechStore::FindBest(const VoiceQuery& query) const {
  const StoredSpeech* exact = FindExact(query);
  if (exact != nullptr) return exact;
  // Enumerate subsets of the query's predicates from largest to smallest;
  // queries carry at most a few predicates, so 2^|Q| is tiny.
  size_t q = query.predicates.size();
  std::vector<uint32_t> masks;
  for (uint32_t mask = 0; mask < (1u << q); ++mask) masks.push_back(mask);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a);
    int pb = __builtin_popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  for (uint32_t mask : masks) {
    if (mask == (1u << q) - 1u && q > 0) continue;  // exact case handled above
    VoiceQuery candidate;
    candidate.target_index = query.target_index;
    for (size_t i = 0; i < q; ++i) {
      if (mask & (1u << i)) candidate.predicates.push_back(query.predicates[i]);
    }
    const StoredSpeech* found = FindExact(candidate);
    if (found != nullptr) return found;
  }
  return nullptr;
}

namespace {

Json SpokenFactToJson(const SpokenFact& fact) {
  Json out = Json::Object();
  Json scope = Json::Array();
  for (const auto& [dim, value] : fact.scope) {
    Json pair = Json::Object();
    pair.Set("dim", Json::Str(dim));
    pair.Set("value", Json::Str(value));
    scope.Append(std::move(pair));
  }
  out.Set("scope", std::move(scope));
  out.Set("value", Json::Number(fact.value));
  return out;
}

}  // namespace

Json SpeechStore::ToJson(const Table& table) const {
  Json out = Json::Object();
  out.Set("table", Json::Str(table.name()));
  Json entries = Json::Array();
  for (const auto& stored : speeches_) {
    Json entry = Json::Object();
    entry.Set("target", Json::Str(table.TargetName(
                            static_cast<size_t>(stored.query.target_index))));
    Json predicates = Json::Array();
    for (const auto& p : stored.query.predicates) {
      Json pair = Json::Object();
      pair.Set("dim", Json::Str(table.DimName(static_cast<size_t>(p.dim))));
      pair.Set("value",
               Json::Str(table.dict(static_cast<size_t>(p.dim)).Lookup(p.value)));
      predicates.Append(std::move(pair));
    }
    entry.Set("predicates", std::move(predicates));
    entry.Set("text", Json::Str(stored.speech.text));
    entry.Set("utility", Json::Number(stored.speech.utility));
    entry.Set("scaled_utility", Json::Number(stored.speech.scaled_utility));
    entry.Set("unit", Json::Str(stored.speech.unit));
    entry.Set("subset", Json::Str(stored.speech.subset_description));
    Json facts = Json::Array();
    for (const auto& fact : stored.speech.facts) facts.Append(SpokenFactToJson(fact));
    entry.Set("facts", std::move(facts));
    entries.Append(std::move(entry));
  }
  out.Set("speeches", std::move(entries));
  return out;
}

Result<SpeechStore> SpeechStore::FromJson(const Json& json, const Table& table) {
  if (!json.is_object()) return Status::ParseError("speech store must be an object");
  const Json* entries = json.Get("speeches");
  if (entries == nullptr || !entries->is_array()) {
    return Status::ParseError("missing 'speeches' array");
  }
  SpeechStore store;
  for (size_t i = 0; i < entries->Size(); ++i) {
    const Json& entry = entries->At(i);
    StoredSpeech stored;
    std::string target = entry.GetString("target", "");
    stored.query.target_index = table.TargetIndex(target);
    if (stored.query.target_index < 0) {
      return Status::NotFound("stored target '" + target + "' not in table");
    }
    const Json* predicates = entry.Get("predicates");
    if (predicates != nullptr && predicates->is_array()) {
      for (size_t p = 0; p < predicates->Size(); ++p) {
        const Json& pair = predicates->At(p);
        VQ_ASSIGN_OR_RETURN(EqPredicate predicate,
                            MakePredicate(table, pair.GetString("dim", ""),
                                          pair.GetString("value", "")));
        stored.query.predicates.push_back(predicate);
      }
      VQ_RETURN_IF_ERROR(NormalizePredicates(&stored.query.predicates));
    }
    stored.speech.target = target;
    stored.speech.text = entry.GetString("text", "");
    stored.speech.utility = entry.GetDouble("utility", 0.0);
    stored.speech.scaled_utility = entry.GetDouble("scaled_utility", 0.0);
    stored.speech.unit = entry.GetString("unit", "");
    stored.speech.subset_description = entry.GetString("subset", "");
    const Json* facts = entry.Get("facts");
    if (facts != nullptr && facts->is_array()) {
      for (size_t f = 0; f < facts->Size(); ++f) {
        const Json& fact_json = facts->At(f);
        SpokenFact fact;
        fact.value = fact_json.GetDouble("value", 0.0);
        const Json* scope = fact_json.Get("scope");
        if (scope != nullptr && scope->is_array()) {
          for (size_t s = 0; s < scope->Size(); ++s) {
            fact.scope.emplace_back(scope->At(s).GetString("dim", ""),
                                    scope->At(s).GetString("value", ""));
          }
        }
        stored.speech.facts.push_back(std::move(fact));
      }
    }
    store.Put(std::move(stored));
  }
  return store;
}

}  // namespace vq
