#include "engine/voice_engine.h"

#include "util/stopwatch.h"

namespace vq {

Result<VoiceQueryEngine> VoiceQueryEngine::Build(const Table* table,
                                                 Configuration config,
                                                 const PreprocessOptions& options,
                                                 PreprocessStats* stats) {
  VoiceQueryEngine engine;
  engine.table_ = table;
  VQ_ASSIGN_OR_RETURN(engine.store_, Preprocess(*table, config, options, stats));
  engine.config_ = std::move(config);
  engine.extractor_ = std::make_unique<QueryExtractor>(table);
  engine.classifier_ = std::make_unique<RequestClassifier>(
      engine.extractor_.get(), engine.config_.max_query_predicates);
  return engine;
}

VoiceQueryEngine VoiceQueryEngine::FromStore(const Table* table,
                                             Configuration config,
                                             SpeechStore store) {
  VoiceQueryEngine engine;
  engine.table_ = table;
  engine.store_ = std::move(store);
  engine.config_ = std::move(config);
  engine.extractor_ = std::make_unique<QueryExtractor>(table);
  engine.classifier_ = std::make_unique<RequestClassifier>(
      engine.extractor_.get(), engine.config_.max_query_predicates);
  return engine;
}

std::string VoiceQueryEngine::HelpText() const {
  return "You can ask for an average value, optionally narrowed down by up to " +
         std::to_string(config_.max_query_predicates) +
         " filters. For example: 'delays in Winter'.";
}

VoiceQuery VoiceQueryEngine::GroundQuery(const ClassifiedRequest& classified) const {
  VoiceQuery query;
  query.target_index = classified.query.target_index;
  query.predicates = classified.query.predicates;
  if (query.target_index < 0 && !store_.speeches().empty()) {
    // No target grounded: default to the first configured target, as the
    // deployed app answers "cancellations?"-style queries with its
    // single target column.
    query.target_index = store_.speeches().front().query.target_index;
  }
  return query;
}

VoiceQueryEngine::Response VoiceQueryEngine::Answer(const std::string& request,
                                                    Session* session) const {
  Stopwatch watch;
  Response response;
  ClassifiedRequest classified = classifier_->Classify(request);
  response.type = classified.type;

  switch (classified.type) {
    case RequestType::kHelp:
      response.text = HelpText();
      break;
    case RequestType::kRepeat:
      response.text = (session == nullptr || session->last_speech_text.empty())
                          ? NothingToRepeatText()
                          : session->last_speech_text;
      break;
    case RequestType::kSupportedQuery:
    case RequestType::kUnsupportedQuery: {
      VoiceQuery query = GroundQuery(classified);
      const StoredSpeech* exact = store_.FindExact(query);
      const StoredSpeech* best = exact != nullptr ? exact : store_.FindBest(query);
      if (best != nullptr) {
        response.speech = best;
        response.exact_match = exact != nullptr;
        response.text = best->speech.text;
        if (session != nullptr) session->last_speech_text = best->speech.text;
      } else {
        response.text = NoSummaryText();
      }
      break;
    }
    case RequestType::kOther:
      response.text = NotUnderstoodText();
      break;
  }
  response.lookup_seconds = watch.ElapsedSeconds();
  return response;
}

VoiceQueryEngine::Response VoiceQueryEngine::Answer(const std::string& request) {
  MutexLock lock(*default_session_mutex_);
  return Answer(request, &default_session_);
}

}  // namespace vq
