#include "engine/preprocessor.h"

#include <mutex>

#include "util/simd.h"
#include "util/stopwatch.h"

namespace vq {

Result<SpeechStore> Preprocess(const Table& table, const Configuration& config,
                               const PreprocessOptions& options,
                               PreprocessStats* stats) {
  Stopwatch watch;
  VQ_ASSIGN_OR_RETURN(ProblemGenerator generator,
                      ProblemGenerator::Create(&table, config));
  std::vector<VoiceQuery> queries = generator.GenerateQueries();

  SummarizerOptions summarizer;
  summarizer.max_facts = config.max_facts;
  summarizer.max_fact_dims = config.max_fact_dims;
  summarizer.algorithm = options.algorithm;
  summarizer.exact_timeout_seconds = options.exact_timeout_seconds;
  summarizer.instance.prior_kind = config.prior;
  summarizer.instance.prior_value = config.prior_value;

  std::vector<std::unique_ptr<StoredSpeech>> results(queries.size());
  std::vector<double> solve_seconds(queries.size(), 0.0);

  auto solve_one = [&](size_t i) {
    const VoiceQuery& query = queries[i];
    auto prepared =
        PreparedProblem::Prepare(table, query.predicates, query.target_index,
                                 summarizer);
    if (!prepared.ok()) return;  // empty subsets are simply skipped
    SummaryResult result = prepared.value().Run(summarizer);
    auto stored = std::make_unique<StoredSpeech>();
    stored->query = query;
    stored->speech = RenderSpeech(table, prepared.value().instance(),
                                  prepared.value().catalog(), result,
                                  query.predicates, options.speech_template);
    solve_seconds[i] = result.elapsed_seconds;
    results[i] = std::move(stored);
  };

  // Every worker's scope materialization routes through the scan planner,
  // which reads the table's inverted index; building it once up front keeps
  // the first wave of parallel solves from serializing on the lazy build.
  // On a multi-shard (paper-scale) table the build itself fans shard builds
  // across the scan pool, and the workers' later multi-shard filters fan out
  // there too -- the scan pool is deliberately distinct from options.pool,
  // so a solve worker blocking on its filter can never deadlock the fan-out.
  // Warmed even with zero generated queries: pre-processing is the dynamic
  // registry's last step before a dataset becomes routable, and the serving
  // layer's first on-demand miss hits the index immediately. Touching the
  // SIMD kernel table latches the runtime CPU dispatch (one probe, see
  // util/simd.h) before the workers fan out, so every solve -- and the
  // per-fact block-delta tables FactCatalog::Build warms for each problem
  // -- runs on the selected kernels from the first query on.
  (void)table.index();
  (void)simd::Active();

  if (options.pool != nullptr) {
    ParallelFor(options.pool, queries.size(), solve_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) solve_one(i);
  }

  SpeechStore store;
  double sum_scaled = 0.0;
  double sum_seconds = 0.0;
  size_t num_speeches = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (results[i] == nullptr) continue;
    sum_scaled += results[i]->speech.scaled_utility;
    sum_seconds += solve_seconds[i];
    ++num_speeches;
    store.Put(std::move(*results[i]));
  }

  if (stats != nullptr) {
    stats->num_queries = queries.size();
    stats->num_speeches = num_speeches;
    stats->total_seconds = watch.ElapsedSeconds();
    stats->sum_scaled_utility = sum_scaled;
    stats->sum_seconds = sum_seconds;
  }
  return store;
}

}  // namespace vq
