// Batch pre-processing: solve every summarization problem a configuration
// describes and fill the speech store (the paper's core idea -- move the
// expensive optimization out of the query path).
#ifndef VQ_ENGINE_PREPROCESSOR_H_
#define VQ_ENGINE_PREPROCESSOR_H_

#include "core/summarizer.h"
#include "engine/speech_store.h"
#include "query/config.h"
#include "util/thread_pool.h"

namespace vq {

struct PreprocessStats {
  size_t num_queries = 0;
  size_t num_speeches = 0;  ///< queries whose subset was non-empty
  double total_seconds = 0.0;
  double sum_scaled_utility = 0.0;
  double sum_seconds = 0.0;  ///< summed per-problem solve time

  double MeanScaledUtility() const {
    return num_speeches > 0 ? sum_scaled_utility / static_cast<double>(num_speeches)
                            : 0.0;
  }
  double PerQuerySeconds() const {
    return num_speeches > 0 ? total_seconds / static_cast<double>(num_speeches) : 0.0;
  }
};

struct PreprocessOptions {
  Algorithm algorithm = Algorithm::kGreedyOptimized;
  /// Per-problem exact-search budget (only relevant for Algorithm::kExact).
  double exact_timeout_seconds = 0.0;
  SpeechTemplate speech_template;
  /// Optional thread pool; nullptr = sequential.
  ThreadPool* pool = nullptr;
};

/// Generates all queries for `config`, solves each summarization problem
/// with the configured algorithm and returns the filled store.
Result<SpeechStore> Preprocess(const Table& table, const Configuration& config,
                               const PreprocessOptions& options,
                               PreprocessStats* stats = nullptr);

}  // namespace vq

#endif  // VQ_ENGINE_PREPROCESSOR_H_
