// Run-time sampling baseline, standing in for the prior data-vocalization
// work the paper compares against (Section VIII-E; [25], [28]).
//
// The prior method approximates the quality of candidate speeches by
// sampling rows at run time; the first sentence can be emitted once its
// estimate is confident (latency < total processing time), and spoken facts
// carry value *ranges* rather than precise averages, to account for sampling
// imprecision ("the cancellation probability is between 5 and 10%").
#ifndef VQ_BASELINE_SAMPLING_H_
#define VQ_BASELINE_SAMPLING_H_

#include <vector>

#include "core/evaluator.h"
#include "util/rng.h"

namespace vq {

struct BaselineOptions {
  int max_facts = 3;
  size_t batch_rows = 128;      ///< rows sampled per refinement round
  size_t max_rounds = 64;       ///< hard cap on refinement rounds
  double confidence_z = 1.96;   ///< CI multiplier
  /// A fact is committed once its CI half-width falls below this fraction of
  /// the target column's value range.
  double commit_ci_fraction = 0.05;
};

/// A spoken range fact: the fact's scope with an estimated value interval.
struct RangeFact {
  FactId id = kNoFact;
  double estimate = 0.0;
  double low = 0.0;
  double high = 0.0;
};

struct BaselineResult {
  std::vector<RangeFact> facts;
  /// Time until the first fact was committed (speech output can start).
  double latency_seconds = 0.0;
  /// Total processing time until the full speech was selected.
  double total_seconds = 0.0;
  size_t rows_sampled = 0;
  /// D(F) / U(F) of the spoken estimates under the paper's expectation
  /// model, computed against the true data (for quality comparisons).
  double error = 0.0;
  double utility = 0.0;
  double base_error = 0.0;
};

/// \brief Greedy speech construction on a growing row sample.
///
/// Uses the same fact candidates as the pre-processing approach but never
/// touches the full relation: fact values and utility gains are estimated
/// from sampled rows only, and facts are committed once their confidence
/// interval is narrow enough.
class SamplingVocalizer {
 public:
  explicit SamplingVocalizer(BaselineOptions options = {}) : options_(options) {}

  BaselineResult Run(const Evaluator& evaluator, Rng* rng) const;

 private:
  BaselineOptions options_;
};

}  // namespace vq

#endif  // VQ_BASELINE_SAMPLING_H_
