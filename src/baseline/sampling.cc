#include "baseline/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/stopwatch.h"

namespace vq {

namespace {

/// Error of spoken estimates under the closest-value expectation model,
/// evaluated against the true rows.
double TrueError(const Evaluator& evaluator, const std::vector<RangeFact>& facts) {
  const SummaryInstance& inst = evaluator.instance();
  const FactCatalog& catalog = evaluator.catalog();
  double error = 0.0;
  for (size_t r = 0; r < inst.num_rows; ++r) {
    double actual = inst.target[r];
    double best_dev = std::fabs(inst.prior - actual);
    for (const RangeFact& fact : facts) {
      if (!catalog.RowInScope(r, fact.id)) continue;
      best_dev = std::min(best_dev, std::fabs(fact.estimate - actual));
    }
    error += best_dev * inst.weight[r];
  }
  return error;
}

}  // namespace

BaselineResult SamplingVocalizer::Run(const Evaluator& evaluator, Rng* rng) const {
  Stopwatch watch;
  BaselineResult result;
  result.base_error = evaluator.BaseError();

  const SummaryInstance& inst = evaluator.instance();
  const FactCatalog& catalog = evaluator.catalog();
  if (catalog.NumFacts() == 0 || inst.num_rows == 0) {
    result.error = result.base_error;
    result.utility = 0.0;
    return result;
  }

  // Value range for Hoeffding-style confidence intervals.
  double lo = inst.target[0];
  double hi = inst.target[0];
  for (double v : inst.target) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double value_range = std::max(1e-9, hi - lo);

  // Cumulative weights for weighted row sampling (merged rows carry
  // multiplicities; sampling must reflect the original relation).
  std::vector<double> cumulative(inst.num_rows);
  double total = 0.0;
  for (size_t r = 0; r < inst.num_rows; ++r) {
    total += inst.weight[r];
    cumulative[r] = total;
  }
  auto sample_row = [&]() -> size_t {
    double draw = rng->NextDouble() * total;
    return static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), draw) -
        cumulative.begin());
  };

  // Per-fact sample statistics.
  std::vector<double> sum(catalog.NumFacts(), 0.0);
  std::vector<double> count(catalog.NumFacts(), 0.0);
  std::vector<uint32_t> sampled_rows;
  std::vector<bool> committed(catalog.NumFacts(), false);

  for (size_t round = 0; round < options_.max_rounds; ++round) {
    for (size_t b = 0; b < options_.batch_rows; ++b) {
      size_t r = sample_row();
      sampled_rows.push_back(static_cast<uint32_t>(r));
      for (const FactGroup& group : catalog.groups()) {
        FactId id = group.row_fact[r];
        sum[id] += inst.target[r];
        count[id] += 1.0;
      }
    }
    result.rows_sampled += options_.batch_rows;

    // Greedy fact choice on the sample: per-sampled-row deviation given the
    // committed facts' estimates, then the estimated gain of each candidate.
    std::vector<double> gains(catalog.NumFacts(), 0.0);
    std::vector<double> estimate(catalog.NumFacts(), 0.0);
    for (FactId f = 0; f < catalog.NumFacts(); ++f) {
      estimate[f] = count[f] > 0.0 ? sum[f] / count[f] : inst.prior;
    }
    for (uint32_t r : sampled_rows) {
      double actual = inst.target[r];
      double current = std::fabs(inst.prior - actual);
      for (const RangeFact& fact : result.facts) {
        if (catalog.RowInScope(r, fact.id)) {
          current = std::min(current, std::fabs(fact.estimate - actual));
        }
      }
      for (const FactGroup& group : catalog.groups()) {
        FactId id = group.row_fact[r];
        if (committed[id]) continue;
        double gain = current - std::fabs(estimate[id] - actual);
        if (gain > 0.0) gains[id] += gain;
      }
    }

    FactId best = kNoFact;
    double best_gain = 0.0;
    for (FactId f = 0; f < catalog.NumFacts(); ++f) {
      if (committed[f] || count[f] == 0.0) continue;
      if (gains[f] > best_gain) {
        best_gain = gains[f];
        best = f;
      }
    }
    if (best == kNoFact) continue;

    // Commit when the CI half-width is small relative to the value range.
    double half_width =
        options_.confidence_z * value_range / (2.0 * std::sqrt(count[best]));
    if (half_width <= options_.commit_ci_fraction * value_range) {
      RangeFact fact;
      fact.id = best;
      fact.estimate = estimate[best];
      fact.low = estimate[best] - half_width;
      fact.high = estimate[best] + half_width;
      result.facts.push_back(fact);
      committed[best] = true;
      if (result.facts.size() == 1) result.latency_seconds = watch.ElapsedSeconds();
      if (static_cast<int>(result.facts.size()) >= options_.max_facts) break;
    }
  }

  result.total_seconds = watch.ElapsedSeconds();
  if (result.facts.empty()) result.latency_seconds = result.total_seconds;
  result.error = TrueError(evaluator, result.facts);
  result.utility = result.base_error - result.error;
  return result;
}

}  // namespace vq
