#include "util/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "util/rng.h"
#include "util/sync.h"

namespace vq {
namespace fault {
namespace {

// FNV-1a so each point gets its own deterministic Bernoulli stream
// regardless of arming order.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

struct FaultInjector::Impl {
  mutable Mutex mutex;
  uint64_t base_seed GUARDED_BY(mutex) = 0x9E3779B97F4A7C15ULL;

  struct PointState {
    FaultAction action;
    bool armed = false;
    Rng rng{0};
    FaultPointStats stats;
  };
  std::unordered_map<std::string, PointState> points GUARDED_BY(mutex);
};

FaultInjector::~FaultInjector() { delete impl_.load(std::memory_order_acquire); }

FaultInjector::Impl& FaultInjector::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;
  return *existing;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    if (const char* seed_env = std::getenv("VQ_FAULTS_SEED")) {
      instance->Seed(std::strtoull(seed_env, nullptr, 10));
    }
    if (const char* spec = std::getenv("VQ_FAULTS")) {
      Status status = instance->Configure(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "VQ_FAULTS ignored: %s\n",
                     status.message().c_str());
        instance->Reset();
      }
    }
    return instance;
  }();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultAction action) {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  Impl::PointState& entry = state.points[point];
  if (!entry.armed) {
    entry.rng = Rng(state.base_seed ^ HashName(point));
    // relaxed: fast-path arming hint; the point state itself is under the mutex.
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
  entry.armed = true;
  entry.action = action;
}

void FaultInjector::Disarm(const std::string& point) {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  auto it = state.points.find(point);
  if (it == state.points.end() || !it->second.armed) return;
  it->second.armed = false;
  // relaxed: hint update (see Arm).
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  int armed = 0;
  for (const auto& [name, entry] : state.points) {
    if (entry.armed) ++armed;
  }
  state.points.clear();
  // relaxed: hint update (see Arm).
  armed_points_.fetch_sub(armed, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  state.base_seed = seed;
}

Status FaultInjector::Configure(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    size_t colon = clause.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("fault clause needs 'point:key=value': " +
                                     clause);
    }
    std::string point = clause.substr(0, colon);
    FaultAction action;
    size_t kpos = colon + 1;
    while (kpos < clause.size()) {
      size_t kend = clause.find(',', kpos);
      if (kend == std::string::npos) kend = clause.size();
      std::string pair = clause.substr(kpos, kend - kpos);
      kpos = kend + 1;
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault action needs 'key=value': " +
                                       pair);
      }
      std::string key = pair.substr(0, eq);
      std::string value = pair.substr(eq + 1);
      char* parse_end = nullptr;
      double numeric = std::strtod(value.c_str(), &parse_end);
      if (parse_end == value.c_str() || *parse_end != '\0') {
        return Status::InvalidArgument("fault value not numeric: " + pair);
      }
      if (key == "fail") {
        if (numeric < 0.0 || numeric > 1.0) {
          return Status::InvalidArgument("fail probability outside [0,1]: " +
                                         pair);
        }
        action.fail_probability = numeric;
      } else if (key == "delay_ms") {
        if (numeric < 0.0) {
          return Status::InvalidArgument("negative delay: " + pair);
        }
        action.delay_seconds = numeric * 1e-3;
      } else if (key == "max") {
        action.max_failures = static_cast<uint64_t>(numeric);
      } else {
        return Status::InvalidArgument("unknown fault key: " + key);
      }
    }
    Arm(point, action);
  }
  return Status::OK();
}

bool FaultInjector::ShouldFail(const char* point) {
  if (!AnyArmed()) return false;
  Impl& state = impl();
  double delay_seconds = 0.0;
  bool fail = false;
  {
    MutexLock lock(state.mutex);
    auto it = state.points.find(point);
    if (it == state.points.end() || !it->second.armed) return false;
    Impl::PointState& entry = it->second;
    entry.stats.hits++;
    delay_seconds = entry.action.delay_seconds;
    if (entry.action.fail_probability > 0.0 &&
        (entry.action.max_failures == 0 ||
         entry.stats.failures < entry.action.max_failures)) {
      fail = entry.rng.NextBool(entry.action.fail_probability);
      if (fail) entry.stats.failures++;
    }
  }
  if (delay_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds));
  }
  return fail;
}

FaultPointStats FaultInjector::PointStats(const std::string& point) const {
  Impl* state = impl_.load(std::memory_order_acquire);
  if (state == nullptr) return {};
  MutexLock lock(state->mutex);
  auto it = state->points.find(point);
  if (it == state->points.end()) return {};
  return it->second.stats;
}

}  // namespace fault
}  // namespace vq
