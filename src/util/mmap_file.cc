#include "util/mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define VQ_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define VQ_HAVE_MMAP 0
#include <fstream>
#endif

namespace vq {

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(other.addr_),
      size_(other.size_),
      fallback_(std::move(other.fallback_)) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  addr_ = other.addr_;
  size_ = other.size_;
  fallback_ = std::move(other.fallback_);
  other.addr_ = nullptr;
  other.size_ = 0;
  return *this;
}

void MmapFile::Reset() {
#if VQ_HAVE_MMAP
  if (addr_ != nullptr && fallback_.empty()) {
    ::munmap(addr_, size_);
  }
#endif
  addr_ = nullptr;
  size_ = 0;
  fallback_.clear();
}

#if VQ_HAVE_MMAP

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IOError("cannot stat '" + path + "': " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    // MAP_PRIVATE: the mapping is logically immutable input; nothing is ever
    // written back, and a later in-place rewrite of the file by another
    // process cannot alter pages this process already faulted in.
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status status = Status::IOError("cannot mmap '" + path + "': " +
                                      std::strerror(errno));
      ::close(fd);
      return status;
    }
    file.addr_ = addr;
  }
  // The mapping keeps its own reference to the file; the descriptor is not
  // needed past this point.
  ::close(fd);
  return file;
}

#else  // !VQ_HAVE_MMAP

Result<MmapFile> MmapFile::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::streamsize size = in.tellg();
  in.seekg(0);
  MmapFile file;
  file.fallback_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file.fallback_.data()), size)) {
    return Status::IOError("cannot read '" + path + "'");
  }
  file.size_ = file.fallback_.size();
  file.addr_ = file.fallback_.empty() ? nullptr : file.fallback_.data();
  return file;
}

#endif  // VQ_HAVE_MMAP

}  // namespace vq
