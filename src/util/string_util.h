// Small string helpers shared across modules (no locale dependence).
#ifndef VQ_UTIL_STRING_UTIL_H_
#define VQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vq {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `needle` occurs in `haystack` (case-insensitive ASCII).
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Formats a double trimming trailing zeros ("12.5", "3", "0.25").
std::string FormatCompact(double value, int max_decimals = 2);

/// "1_234_567" style human-readable integer (thousands separated by commas).
std::string FormatThousands(uint64_t value);

}  // namespace vq

#endif  // VQ_UTIL_STRING_UTIL_H_
