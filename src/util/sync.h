// Synchronization primitives with Clang thread-safety annotations: the ONE
// place in the tree that may name std::mutex (tools/check_sync_lint.py
// enforces this).
//
// Every mutex in the serving stack is a vq::Mutex, every guarded field is
// declared GUARDED_BY(its mutex), and every private helper that expects a
// lock already held is declared REQUIRES(it). Under Clang the `static`
// CMake preset turns these declarations into compile errors for any
// unguarded access (-Wthread-safety -Werror=thread-safety); under GCC the
// macros expand to nothing, so the annotated tree builds exactly as before.
// That split is deliberate: the annotations are machine-checked proofs when
// a Clang toolchain is available and free documentation when it is not --
// the runtime tsan lane keeps guarding the interleavings either way.
//
// Annotation conventions used across the tree:
//
//  - Fields:    `T field_ GUARDED_BY(mutex_);` -- reads and writes require
//               mutex_ held. Pointer members whose *pointee* is guarded use
//               PT_GUARDED_BY.
//  - Helpers:   `void Helper() REQUIRES(mutex_);` -- caller must hold
//               mutex_ (the analysis checks call sites AND the body).
//  - Public:    methods that take a lock internally are annotated
//               EXCLUDES(mutex_) when calling them with the lock held would
//               deadlock (self-deadlock documentation).
//  - Ordering:  `Mutex a_ ACQUIRED_BEFORE(b_);` declares the only legal
//               nesting. The cross-class serving order is documented here
//               because ACQUIRED_BEFORE can only name mutexes visible in
//               one class:
//
//      router sync_mutex_            (host-set rebuild / retirement sweeps)
//        -> host learned_mutex_      (drain of a retired host's speeches)
//          -> registry save_mutex_   (learned-file read-merge-write)
//        -> cache Shard::mutex       (fingerprint purge, one shard at a time)
//      cache owners_mutex_ and Shard::mutex are never held together (the
//      owner account is resolved before Put takes its shard lock), and no
//      two Shard::mutex instances ever nest.
//      host batch / gate / prior / perf mutexes: leaves, never nested.
//
//  - Escapes:   NO_THREAD_SAFETY_ANALYSIS is allowed ONLY with a written
//               invariant comment explaining why the analysis cannot see
//               the guarantee (e.g. handoff protocols). Zero such escapes
//               exist today; keep it that way.
//
// vq::CondVar pairs with vq::Mutex the way abseil's CondVar pairs with its
// Mutex: Wait(mu) REQUIRES(mu) -- the analysis treats the wait as a region
// where the lock is held throughout, which is sound for the caller because
// the lock IS held again when Wait returns. Use explicit `while (!pred)`
// loops around Wait rather than predicate lambdas: the analysis checks the
// loop body against the held lock, whereas a lambda would need its own
// annotation.
#ifndef VQ_UTIL_SYNC_H_
#define VQ_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- attributes
// Thread-safety analysis attributes (Clang only; no-ops elsewhere). The
// spelling follows the Clang documentation's canonical macro set.
#if defined(__clang__)
#define VQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define VQ_THREAD_ANNOTATION_(x)  // GCC and others: annotations compile away.
#endif

#define CAPABILITY(x) VQ_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY VQ_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) VQ_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) VQ_THREAD_ANNOTATION_(pt_guarded_by(x))
#define REQUIRES(...) VQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VQ_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) VQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) VQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  VQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) VQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) VQ_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) VQ_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define RETURN_CAPABILITY(x) VQ_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS VQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace vq {

/// \brief std::mutex wearing the `mutex` capability.
///
/// Prefer MutexLock for scoped sections; call Lock()/Unlock() directly only
/// for protocols RAII cannot express (and annotate the surrounding
/// functions ACQUIRE/RELEASE so the analysis still tracks them).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped lock of one vq::Mutex (the lock_guard replacement).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with vq::Mutex.
///
/// Waits adopt the Mutex's underlying std::mutex for the duration of the
/// block, so the fast std::condition_variable (not _any) does the parking.
/// All waits REQUIRE the mutex held; write explicit `while (!pred)` loops
/// (see file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before return.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Bounded wait: returns false when `seconds` elapsed without a notify
  /// (the mutex is reacquired either way). Non-positive budgets poll once.
  bool WaitFor(Mutex& mu, double seconds) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vq

#endif  // VQ_UTIL_SYNC_H_
