#include "util/table_printer.h"

#include <cstdio>

#include "util/string_util.h"

namespace vq {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::string& label,
                                 const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatCompact(v, decimals));
  AddRow(std::move(cells));
}

std::string TablePrinter::Render(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      if (c + 1 < header_.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };

  std::string out;
  if (!title.empty()) {
    out += title;
    out.push_back('\n');
  }
  out += render_row(header_);
  size_t rule_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_width, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(const std::string& title) const {
  std::fputs(Render(title).c_str(), stdout);
  std::fputs("\n", stdout);
}

void PrintBanner(const std::string& title) {
  std::string line(title.size() + 6, '=');
  std::printf("%s\n== %s ==\n%s\n", line.c_str(), title.c_str(), line.c_str());
}

}  // namespace vq
