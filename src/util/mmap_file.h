// RAII read-only memory mapping, the ownership primitive under zero-copy
// dataset snapshots (storage/snapshot.h).
//
// A mapping outlives the file descriptor (closed right after mmap) and is
// immutable: MAP_PRIVATE + PROT_READ means a hostile or concurrent writer
// truncating the file can at worst SIGBUS a reader -- which is why the
// snapshot loader verifies the checksum (touching every payload page) once
// up front, before any span into the mapping is published to the serving
// stack. Consumers hold the mapping by shared_ptr; storage spans into it
// (Table columns, ShardIndex posting lists) are valid exactly as long as
// one owner remains, which the dataset registry guarantees by pinning the
// mapping inside the DatasetEntry that RCU registry snapshots keep alive.
//
// On non-POSIX platforms the "mapping" degrades to a heap buffer read from
// the file -- same interface and lifetime rules, no zero-copy win.
#ifndef VQ_UTIL_MMAP_FILE_H_
#define VQ_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace vq {

/// \brief Move-only owner of one read-only file mapping.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps `path` read-only in its entirety. Empty files map successfully
  /// (data() is null, size() 0).
  static Result<MmapFile> Open(const std::string& path);

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }

  /// `count` elements of T starting at byte `offset`. The caller has
  /// validated bounds (the snapshot loader checks every section against
  /// size() before building spans); asserts in debug builds.
  template <typename T>
  std::span<const T> SpanAt(size_t offset, size_t count) const {
    return {reinterpret_cast<const T*>(data() + offset), count};
  }

 private:
  void Reset();

  void* addr_ = nullptr;
  size_t size_ = 0;
  /// Non-POSIX fallback storage; addr_ points into it when non-empty.
  std::vector<uint8_t> fallback_;
};

}  // namespace vq

#endif  // VQ_UTIL_MMAP_FILE_H_
