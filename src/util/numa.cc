#include "util/numa.h"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace vq {
namespace numa {

namespace {

#if defined(__linux__)

/// Parses a sysfs cpulist ("0-3,8,10-11") into cpu ids. Malformed input
/// yields an empty list, which callers treat as "don't pin".
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(pos, end - pos);
    size_t dash = token.find('-');
    char* rest = nullptr;
    if (dash == std::string::npos) {
      long cpu = std::strtol(token.c_str(), &rest, 10);
      if (rest != token.c_str() && cpu >= 0) cpus.push_back(static_cast<int>(cpu));
    } else {
      long lo = std::strtol(token.substr(0, dash).c_str(), &rest, 10);
      long hi = std::strtol(token.substr(dash + 1).c_str(), &rest, 10);
      for (long cpu = lo; cpu >= 0 && cpu <= hi; ++cpu) {
        cpus.push_back(static_cast<int>(cpu));
      }
    }
    pos = end + 1;
  }
  return cpus;
}

/// Per-node cpusets read once from sysfs. Empty when detection found fewer
/// than two usable nodes (the "graceful no-op" state).
const std::vector<std::vector<int>>& NodeCpus() {
  static const std::vector<std::vector<int>>* nodes = [] {
    auto* out = new std::vector<std::vector<int>>();
    for (size_t node = 0;; ++node) {
      std::ifstream cpulist("/sys/devices/system/node/node" +
                            std::to_string(node) + "/cpulist");
      if (!cpulist.is_open()) break;
      std::string text;
      std::getline(cpulist, text);
      std::vector<int> cpus = ParseCpuList(text);
      if (!cpus.empty()) out->push_back(std::move(cpus));
    }
    if (out->size() < 2) out->clear();
    return out;
  }();
  return *nodes;
}

#endif  // __linux__

bool EnvRequested() {
  const char* env = std::getenv("VQ_NUMA");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

bool Enabled() {
#if defined(__linux__)
  static const bool enabled = EnvRequested() && !NodeCpus().empty();
  return enabled;
#else
  return false;
#endif
}

size_t NumNodes() {
#if defined(__linux__)
  if (!Enabled()) return 1;
  return NodeCpus().size();
#else
  return 1;
#endif
}

bool PinThreadToNode(size_t node) {
#if defined(__linux__)
  if (!Enabled()) return false;
  const auto& nodes = NodeCpus();
  const std::vector<int>& cpus = nodes[node % nodes.size()];
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (int cpu : cpus) CPU_SET(cpu, &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)node;
  return false;
#endif
}

}  // namespace numa
}  // namespace vq
