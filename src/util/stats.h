// Descriptive statistics and distribution functions used across the library.
#ifndef VQ_UTIL_STATS_H_
#define VQ_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace vq {

/// Arithmetic mean; 0.0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0.0 for n < 2.
double Variance(const std::vector<double>& xs);

/// Sample standard deviation.
double Stddev(const std::vector<double>& xs);

/// Median (average of middle two for even n); 0.0 for an empty input.
/// Copies and partially sorts the input.
double Median(std::vector<double> xs);

/// Linear-interpolated quantile, q in [0, 1]; 0.0 for an empty input.
double Quantile(std::vector<double> xs, double q);

/// Pearson correlation; 0.0 if either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Standard normal cumulative distribution function Phi(z).
double NormalCdf(double z);

/// Normal CDF with the given mean and standard deviation.
double NormalCdf(double x, double mean, double stddev);

/// P(X > Y) for independent X ~ N(mu_x, sigma^2), Y ~ N(mu_y, sigma^2).
/// This is the pruning-probability primitive of the paper's cost model
/// (Section VI-C): Pr(Ps->t) = Phi((mu_s - mu_t) / (sqrt(2) * sigma)).
double NormalGreaterProbability(double mu_x, double mu_y, double sigma);

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0.0 for count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vq

#endif  // VQ_UTIL_STATS_H_
