// Status and Result<T>: exception-free error propagation (RocksDB/Arrow idiom).
#ifndef VQ_UTIL_STATUS_H_
#define VQ_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace vq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kTimeout,
  kIOError,
  kParseError,
  kInternal,
  kUnsupported,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Success-or-error result of an operation that returns no value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<int> r = ParseInt(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Value accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace vq

/// Propagates an error status from an expression producing a Status.
#define VQ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::vq::Status vq_status__ = (expr);            \
    if (!vq_status__.ok()) return vq_status__;    \
  } while (false)

#define VQ_CONCAT_IMPL_(a, b) a##b
#define VQ_CONCAT_(a, b) VQ_CONCAT_IMPL_(a, b)

/// Evaluates an expression producing Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define VQ_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto VQ_CONCAT_(vq_result__, __LINE__) = (expr);              \
  if (!VQ_CONCAT_(vq_result__, __LINE__).ok())                  \
    return VQ_CONCAT_(vq_result__, __LINE__).status();          \
  lhs = std::move(VQ_CONCAT_(vq_result__, __LINE__)).value()

#endif  // VQ_UTIL_STATUS_H_
