// FNV-1a 64-bit hashing, the one place the offset-basis/prime constants
// live. Used wherever the codebase needs a cheap deterministic
// non-cryptographic hash (row-merge keys in facts/instance.cc, the
// learned-file table fingerprint in serve/answer.cc). Deterministic across
// runs of equal endianness; never used for security.
#ifndef VQ_UTIL_FNV_H_
#define VQ_UTIL_FNV_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace vq {

inline constexpr uint64_t kFnv64OffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnv64Prime = 1099511628211ull;

/// Incremental FNV-1a 64 state.
struct Fnv64 {
  uint64_t state = kFnv64OffsetBasis;

  void Mix(const void* data, size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state ^= bytes[i];
      state *= kFnv64Prime;
    }
  }
  /// One whole 64-bit value as a single mixing step (byte-granular mixing
  /// is unnecessary for fixed-width inputs).
  void MixWord(uint64_t value) {
    state ^= value;
    state *= kFnv64Prime;
  }
  void MixU64(uint64_t value) { Mix(&value, sizeof(value)); }
  void MixDouble(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    MixU64(bits);
  }
  void MixString(const std::string& text) {
    MixU64(text.size());
    Mix(text.data(), text.size());
  }
};

}  // namespace vq

#endif  // VQ_UTIL_FNV_H_
