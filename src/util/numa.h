// NUMA topology detection + worker pinning for the scan/solve thread pools.
//
// Multi-socket fleet machines split memory across nodes; a shard scanned by
// a worker on the remote socket pays the interconnect on every cache miss.
// This module reads the Linux sysfs topology (/sys/devices/system/node) and
// pins pool workers round-robin across nodes so the shard->worker affinity
// hints in the scan planner keep a shard's pages local to the socket that
// faulted them in. Everything is gated behind the VQ_NUMA environment
// variable and degrades to a graceful no-op: unset VQ_NUMA, a single-node
// box, a non-Linux build, or a failed sysfs read all leave threads unpinned.
#ifndef VQ_UTIL_NUMA_H_
#define VQ_UTIL_NUMA_H_

#include <cstddef>

namespace vq {
namespace numa {

/// True when VQ_NUMA is set (non-empty, not "0") AND the machine exposes
/// more than one NUMA node. Latched on first call.
bool Enabled();

/// Number of NUMA nodes detected from sysfs; 1 when detection is disabled
/// or fails (so `worker % NumNodes()` is always a valid node argument).
size_t NumNodes();

/// Pins the calling thread to the cpuset of node `node % NumNodes()`.
/// No-op unless Enabled(). Returns true if an affinity mask was applied.
bool PinThreadToNode(size_t node);

}  // namespace numa
}  // namespace vq

#endif  // VQ_UTIL_NUMA_H_
