#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace vq {

int CsvData::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvData> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // normalize CRLF
      case '\n':
        end_record();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !record.empty()) end_record();

  if (records.empty()) {
    return Status::ParseError("empty CSV input");
  }
  CsvData out;
  out.header = std::move(records.front());
  size_t width = out.header.size();
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() == 1 && records[r][0].empty()) continue;  // blank line
    if (records[r].size() != width) {
      return Status::ParseError("CSV row " + std::to_string(r) + " has " +
                                std::to_string(records[r].size()) + " fields, expected " +
                                std::to_string(width));
    }
    out.rows.push_back(std::move(records[r]));
  }
  return out;
}

Result<CsvData> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

namespace {
std::string EscapeField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendRecord(const std::vector<std::string>& fields, std::string* out) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += EscapeField(fields[i]);
  }
  out->push_back('\n');
}
}  // namespace

std::string ToCsv(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  AppendRecord(header, &out);
  for (const auto& row : rows) AppendRecord(row, &out);
  return out;
}

Status WriteCsvFile(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToCsv(header, rows);
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace vq
