// Wall-clock timing for benchmarks and per-scenario timeouts.
#ifndef VQ_UTIL_STOPWATCH_H_
#define VQ_UTIL_STOPWATCH_H_

#include <chrono>
#include <functional>
#include <utility>

namespace vq {

/// \brief Monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Deadline helper for per-scenario timeouts (Section VIII-B uses a
/// 48 h per-scenario timeout; benches here use seconds-scale budgets) and for
/// per-request serving budgets threaded through the router (overload control).
///
/// An optional injectable clock (monotonic seconds) lets tests step time
/// deterministically; without one the steady clock is used.
class Deadline {
 public:
  using ClockFn = std::function<double()>;

  /// A non-positive budget means "no deadline".
  explicit Deadline(double budget_seconds)
      : enabled_(budget_seconds > 0.0), budget_seconds_(budget_seconds) {
    start_ = Now();
  }

  Deadline(double budget_seconds, ClockFn clock)
      : enabled_(budget_seconds > 0.0),
        budget_seconds_(budget_seconds),
        clock_(std::move(clock)) {
    start_ = Now();
  }

  bool Expired() const {
    return enabled_ && Now() - start_ >= budget_seconds_;
  }

  double RemainingSeconds() const {
    if (!enabled_) return 1e18;
    return budget_seconds_ - (Now() - start_);
  }

  /// Seconds past the budget; 0 while still inside it (or with no deadline).
  double OverrunSeconds() const {
    if (!enabled_) return 0.0;
    double over = (Now() - start_) - budget_seconds_;
    return over > 0.0 ? over : 0.0;
  }

  bool enabled() const { return enabled_; }
  double budget_seconds() const { return budget_seconds_; }

 private:
  double Now() const {
    if (clock_) return clock_();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  bool enabled_;
  double budget_seconds_;
  ClockFn clock_;
  double start_ = 0.0;
};

}  // namespace vq

#endif  // VQ_UTIL_STOPWATCH_H_
