// Wall-clock timing for benchmarks and per-scenario timeouts.
#ifndef VQ_UTIL_STOPWATCH_H_
#define VQ_UTIL_STOPWATCH_H_

#include <chrono>

namespace vq {

/// \brief Monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Deadline helper for per-scenario timeouts (Section VIII-B uses a
/// 48 h per-scenario timeout; benches here use seconds-scale budgets).
class Deadline {
 public:
  /// A non-positive budget means "no deadline".
  explicit Deadline(double budget_seconds)
      : enabled_(budget_seconds > 0.0), budget_seconds_(budget_seconds) {}

  bool Expired() const {
    return enabled_ && watch_.ElapsedSeconds() >= budget_seconds_;
  }

  double RemainingSeconds() const {
    if (!enabled_) return 1e18;
    return budget_seconds_ - watch_.ElapsedSeconds();
  }

 private:
  bool enabled_;
  double budget_seconds_;
  Stopwatch watch_;
};

}  // namespace vq

#endif  // VQ_UTIL_STOPWATCH_H_
