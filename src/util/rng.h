// Deterministic, seedable random number generation (xoshiro256**).
#ifndef VQ_UTIL_RNG_H_
#define VQ_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vq {

/// \brief Fast, reproducible PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Every stochastic component of the library (dataset generators, simulated
/// crowd workers, the sampling baseline) takes an explicit seed so that all
/// experiments are bit-reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  /// Index sampled from non-negative weights; returns weights.size() only if
  /// all weights are zero or the vector is empty.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Zipf-distributed integer in [0, n) with exponent s (s >= 0; s = 0 is
  /// uniform). Used to plant realistic value-frequency skew in generators.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child stream; deterministic in (state, label).
  Rng Fork(uint64_t label);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64 step: used for seeding and hash-style mixing.
uint64_t SplitMix64(uint64_t* state);

}  // namespace vq

#endif  // VQ_UTIL_RNG_H_
