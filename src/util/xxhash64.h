// XXH64-style checksum for the snapshot format (storage/snapshot.h).
//
// FNV-1a (util/fnv.h) is the codebase's default cheap hash, but it digests
// one byte per multiply -- verifying a multi-hundred-MB snapshot payload
// with it would cost a visible fraction of the cold-start budget the
// snapshot exists to eliminate. This is the standard XXH64 lane mix
// (Yann Collet's algorithm, public domain): four independent 64-bit
// accumulators striping 32-byte blocks, merged and avalanched at the end,
// ~an order of magnitude faster than byte-wise FNV at equal quality for
// corruption detection. Deterministic across runs and processes of equal
// endianness; never used for security.
#ifndef VQ_UTIL_XXHASH64_H_
#define VQ_UTIL_XXHASH64_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace vq {

namespace xxhash_internal {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

inline uint64_t Rotl(uint64_t value, int bits) {
  return (value << bits) | (value >> (64 - bits));
}

inline uint64_t Read64(const unsigned char* p) {
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

inline uint32_t Read32(const unsigned char* p) {
  uint32_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t lane) {
  acc ^= Round(0, lane);
  return acc * kPrime1 + kPrime4;
}

}  // namespace xxhash_internal

/// XXH64 of `size` bytes at `data` under `seed`.
inline uint64_t XxHash64(const void* data, size_t size, uint64_t seed = 0) {
  using namespace xxhash_internal;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + size;
  uint64_t hash;

  if (size >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    hash = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    hash = MergeRound(hash, v1);
    hash = MergeRound(hash, v2);
    hash = MergeRound(hash, v3);
    hash = MergeRound(hash, v4);
  } else {
    hash = seed + kPrime5;
  }

  hash += static_cast<uint64_t>(size);
  while (p + 8 <= end) {
    hash ^= Round(0, Read64(p));
    hash = Rotl(hash, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    hash = Rotl(hash, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    hash ^= static_cast<uint64_t>(*p) * kPrime5;
    hash = Rotl(hash, 11) * kPrime1;
    ++p;
  }

  hash ^= hash >> 33;
  hash *= kPrime2;
  hash ^= hash >> 29;
  hash *= kPrime3;
  hash ^= hash >> 32;
  return hash;
}

}  // namespace vq

#endif  // VQ_UTIL_XXHASH64_H_
