#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace vq {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's unbiased bounded generation (rejection on the low word).
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = -n % n;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double draw = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return static_cast<size_t>(NextBelow(n));
  // Inverse-CDF over the (small) support; cardinalities here are modest.
  double norm = 0.0;
  for (size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double draw = NextDouble() * norm;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (draw < acc) return i - 1;
  }
  return n - 1;
}

Rng Rng::Fork(uint64_t label) {
  uint64_t mix = s_[0] ^ Rotl(s_[2], 13) ^ (label * 0xD6E8FEB86659FD93ULL);
  return Rng(SplitMix64(&mix));
}

}  // namespace vq
