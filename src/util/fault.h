// Deterministic fault injection for robustness and chaos testing.
//
// A fault *point* is a named site in production code (e.g. "snapshot.load")
// that asks the process-wide injector whether to misbehave. Disarmed points
// cost one relaxed atomic load, so the hooks stay compiled into release
// builds. Armed points can fail (the caller maps that to its natural error
// path), delay (simulating a slow dependency, which exercises deadline
// expiry), or both; all randomness comes from a seeded xoshiro stream so a
// chaos run is reproducible from its seed.
//
// Configuration is programmatic (Arm/Disarm/Reset, used by tests) or via the
// VQ_FAULTS environment variable, parsed once on first use:
//
//   VQ_FAULTS="snapshot.load:fail=1;solve.batch:delay_ms=50,fail=0.25"
//   VQ_FAULTS_SEED=42
//
// Spec grammar: `point:key=value[,key=value...][;point:...]` with keys
//   fail=P       fail each hit with probability P in [0,1]
//   delay_ms=D   sleep D milliseconds on every hit before deciding
//   max=N        stop failing after N failures (0 = unlimited)
#ifndef VQ_UTIL_FAULT_H_
#define VQ_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace vq {
namespace fault {

/// Fault points installed in the serving stack. Callers may also use ad-hoc
/// names; these constants exist so tests and docs agree on spelling.
inline constexpr const char* kSnapshotLoad = "snapshot.load";
inline constexpr const char* kAtomicWrite = "file.atomic_write";
inline constexpr const char* kPoolSubmit = "pool.submit";
inline constexpr const char* kSolveBatch = "solve.batch";

/// What an armed point does on each hit.
struct FaultAction {
  double fail_probability = 0.0;  ///< Bernoulli per hit, seeded stream.
  double delay_seconds = 0.0;     ///< Sleep applied on every hit.
  uint64_t max_failures = 0;      ///< Stop failing after N failures; 0 = off.
};

/// Hit/failure counts for one point (reads are monotonic, not atomic
/// snapshots of each other).
struct FaultPointStats {
  uint64_t hits = 0;
  uint64_t failures = 0;
};

class FaultInjector {
 public:
  /// Process-wide injector. First call parses VQ_FAULTS / VQ_FAULTS_SEED.
  static FaultInjector& Global();

  FaultInjector() = default;
  /// Frees the lazily created state. Destroying an injector while another
  /// thread still calls into it is a caller bug (the Global() instance is
  /// deliberately never destroyed, so production code never races this).
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` with `action` (replacing any previous action; counters for
  /// the point are kept).
  void Arm(const std::string& point, FaultAction action);

  void Disarm(const std::string& point);

  /// Disarms every point and zeroes all counters. Tests call this between
  /// cases; the seed is kept.
  void Reset();

  /// Reseeds the per-point Bernoulli streams (takes effect for points armed
  /// after the call).
  void Seed(uint64_t seed);

  /// Parses a VQ_FAULTS-style spec and arms every point in it.
  Status Configure(const std::string& spec);

  /// The production hook: applies the point's delay (if armed), rolls the
  /// failure decision, and bumps counters. Disarmed (or globally empty)
  /// injectors return false without taking a lock.
  bool ShouldFail(const char* point);

  FaultPointStats PointStats(const std::string& point) const;

  bool AnyArmed() const {
    // relaxed: a fast-path probe; arming happens-before the traffic that
    // tests it, and a stale read only delays the first injection.
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Impl;
  Impl& impl();

  std::atomic<int> armed_points_{0};
  std::atomic<Impl*> impl_{nullptr};
};

/// Convenience hook for production call sites:
/// `if (fault::Injected(fault::kSnapshotLoad)) return Status::IOError(...);`
inline bool Injected(const char* point) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.AnyArmed()) return false;
  return injector.ShouldFail(point);
}

}  // namespace fault
}  // namespace vq

#endif  // VQ_UTIL_FAULT_H_
