// Fixed-size thread pool used by the batch pre-processor (Section III: all
// speeches are generated in one batch operation; problems are independent).
#ifndef VQ_UTIL_THREAD_POOL_H_
#define VQ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace vq {

/// \brief Simple fixed-size thread pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. Unlike
  /// Submit(), the callable may throw: the exception is captured in the
  /// future. Used by the serving layer to hand per-request results back to
  /// callers without a side channel.
  template <typename F>
  auto SubmitTask(F&& callable) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(callable));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t NumThreads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + running). Snapshot only:
  /// the value may change before the caller uses it.
  size_t PendingTasks() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `body(i)` for i in [0, count) across the pool, blocking until done.
/// Iteration order across threads is unspecified; bodies must be independent.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body);

}  // namespace vq

#endif  // VQ_UTIL_THREAD_POOL_H_
