// Fixed-size thread pool used by the batch pre-processor (Section III: all
// speeches are generated in one batch operation; problems are independent)
// and, since the sharded-storage refactor, by the parallel shard scans.
#ifndef VQ_UTIL_THREAD_POOL_H_
#define VQ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace vq {

/// Construction knobs for ThreadPool (defaults preserve the historical
/// shared-FIFO behavior exactly).
struct ThreadPoolOptions {
  /// Pin worker i to NUMA node (i % nodes) via util/numa.h. A no-op unless
  /// VQ_NUMA is set and the machine exposes multiple nodes, so pools can
  /// request it unconditionally (scan + solve pools do).
  bool numa_pin = false;
};

/// \brief Fixed-size thread pool: a shared FIFO queue plus one small hinted
/// queue per worker.
///
/// Submit() is the historical any-worker path. SubmitHinted(hint, ...) asks
/// for the task to run on worker `hint % NumThreads()` -- the scan planner
/// uses it to re-run a shard on the worker that scanned it last, keeping the
/// shard's pages hot in that worker's cache (and on its NUMA node when
/// pinning is on). The hint is a preference, not a guarantee: idle workers
/// steal hinted tasks rather than sleep, so a busy hinted worker can never
/// strand work.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0)
      : ThreadPool(num_threads, ThreadPoolOptions{}) {}
  ThreadPool(size_t num_threads, const ThreadPoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  /// Enqueues a task preferring worker `hint % NumThreads()` (see class
  /// comment). Tasks must not throw.
  void SubmitHinted(size_t hint, std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. Unlike
  /// Submit(), the callable may throw: the exception is captured in the
  /// future. Used by the serving layer to hand per-request results back to
  /// callers without a side channel.
  template <typename F>
  auto SubmitTask(F&& callable) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(callable));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t NumThreads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + running). Snapshot only:
  /// the value may change before the caller uses it.
  size_t PendingTasks() const;

  /// Tasks waiting in the shared or hinted queues (not yet picked up by a
  /// worker). Snapshot only; PendingTasks() - QueuedTasks() approximates the
  /// number of tasks currently executing. Exported as a gauge so shedding
  /// decisions are observable.
  size_t QueuedTasks() const;

  /// Sentinel for CurrentWorkerIndex() on a non-worker thread.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// Index of the calling thread within THIS pool's workers, or kNotAWorker
  /// when the caller is not one of them. The scan planner records it as the
  /// shard->worker affinity hint for the next scan of the same shard.
  size_t CurrentWorkerIndex() const;

 private:
  void WorkerLoop(size_t index);
  /// Pops the next task for worker `index` under mutex_: own hinted queue
  /// first, then the shared queue, then steal the oldest hinted task of
  /// another worker. Returns false when nothing is queued.
  bool PopTask(size_t index, std::function<void()>* task) REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  /// Per-worker hinted tasks. hinted_total_ keeps the wait predicate O(1).
  std::vector<std::deque<std::function<void()>>> hinted_ GUARDED_BY(mutex_);
  size_t hinted_total_ GUARDED_BY(mutex_) = 0;
  CondVar work_available_;
  CondVar all_done_;
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

/// Runs `body(i)` for i in [0, count) across the pool, blocking until done.
/// Iteration order across threads is unspecified; bodies must be independent.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body);

/// Process-wide pool for data-parallel storage/scan work: sharded index
/// builds and the scan planner's per-shard filter fan-out. Lazily created
/// with hardware concurrency and NUMA pinning requested (a no-op off
/// multi-node machines, see util/numa.h), never destroyed. Deliberately
/// separate from the serving solve pools: FilterRows runs ON solve-pool
/// workers, and fanning shard tasks into the pool the caller blocks on
/// would deadlock once every worker is a blocked caller.
ThreadPool& ScanPool();

}  // namespace vq

#endif  // VQ_UTIL_THREAD_POOL_H_
