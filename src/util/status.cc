#include "util/status.h"

namespace vq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace vq
