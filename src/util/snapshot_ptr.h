// A published-snapshot cell: one shared_ptr swapped atomically between a
// single writer path and many readers (the RCU pattern the serving layer's
// dynamic registry and router host sets publish through).
//
// Deliberately a mutex around a pointer copy rather than
// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic implements the
// latter with a lock-bit spinlock and PLAIN pointer writes under it, which
// ThreadSanitizer cannot model (false-positive data races on every
// store/load pair) -- and the serve-tsan preset is the concurrency safety
// net for everything built on this cell. The critical section is a
// refcount bump and two pointer moves, nanoseconds; callers that need a
// wait-free fast-path probe pair the cell with a plain atomic version
// counter (see DatasetRegistry::version()) so the lock is only taken when
// something actually changed or a snapshot is genuinely needed.
#ifndef VQ_UTIL_SNAPSHOT_PTR_H_
#define VQ_UTIL_SNAPSHOT_PTR_H_

#include <memory>
#include <utility>

#include "util/sync.h"

namespace vq {

template <typename T>
class SnapshotPtr {
 public:
  SnapshotPtr() = default;
  explicit SnapshotPtr(std::shared_ptr<T> value) : value_(std::move(value)) {}

  SnapshotPtr(const SnapshotPtr&) = delete;
  SnapshotPtr& operator=(const SnapshotPtr&) = delete;

  /// Acquires the current snapshot; the caller's shared_ptr pins it for as
  /// long as it is held, whatever later store()s publish.
  std::shared_ptr<T> load() const {
    MutexLock lock(mutex_);
    return value_;
  }

  /// Publishes `value` as the current snapshot. The displaced snapshot is
  /// released outside the lock (its destructor may cascade).
  void store(std::shared_ptr<T> value) {
    std::shared_ptr<T> displaced;
    {
      MutexLock lock(mutex_);
      displaced = std::exchange(value_, std::move(value));
    }
  }

 private:
  mutable Mutex mutex_;
  std::shared_ptr<T> value_ GUARDED_BY(mutex_);
};

}  // namespace vq

#endif  // VQ_UTIL_SNAPSHOT_PTR_H_
