#include "util/thread_pool.h"

#include <algorithm>

#include "util/numa.h"

namespace vq {

namespace {

/// Which pool (if any) the calling thread belongs to, and its index there.
/// Written once per worker at startup; CurrentWorkerIndex() compares the
/// pool pointer so nested pools cannot alias each other's indices.
thread_local const ThreadPool* tl_worker_pool = nullptr;
thread_local size_t tl_worker_index = ThreadPool::kNotAWorker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, const ThreadPoolOptions& options) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  hinted_.resize(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i, numa_pin = options.numa_pin] {
      if (numa_pin) numa::PinThreadToNode(i % numa::NumNodes());
      WorkerLoop(i);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::SubmitHinted(size_t hint, std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    hinted_[hint % hinted_.size()].push_back(std::move(task));
    ++hinted_total_;
    ++in_flight_;
  }
  // One wake suffices even if it lands on the "wrong" worker: any woken
  // worker that finds its own queues empty steals hinted work (PopTask), so
  // the task cannot strand while a worker sleeps.
  work_available_.NotifyOne();
}

size_t ThreadPool::PendingTasks() const {
  MutexLock lock(mutex_);
  return in_flight_;
}

size_t ThreadPool::QueuedTasks() const {
  MutexLock lock(mutex_);
  return queue_.size() + hinted_total_;
}

size_t ThreadPool::CurrentWorkerIndex() const {
  return tl_worker_pool == this ? tl_worker_index : kNotAWorker;
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

bool ThreadPool::PopTask(size_t index, std::function<void()>* task) {
  // Own hinted tasks first (the affinity contract), then the shared FIFO,
  // then steal the oldest hinted task of the nearest busy neighbor so a
  // saturated hinted worker never serializes the pool.
  std::deque<std::function<void()>>& own = hinted_[index];
  if (!own.empty()) {
    *task = std::move(own.front());
    own.pop_front();
    --hinted_total_;
    return true;
  }
  if (!queue_.empty()) {
    *task = std::move(queue_.front());
    queue_.pop();
    return true;
  }
  if (hinted_total_ > 0) {
    for (size_t step = 1; step < hinted_.size(); ++step) {
      std::deque<std::function<void()>>& other =
          hinted_[(index + step) % hinted_.size()];
      if (!other.empty()) {
        *task = std::move(other.front());
        other.pop_front();
        --hinted_total_;
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_worker_pool = this;
  tl_worker_index = index;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty() && hinted_total_ == 0) {
        work_available_.Wait(mutex_);
      }
      if (!PopTask(index, &task)) {
        if (shutting_down_) return;
        continue;
      }
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

ThreadPool& ScanPool() {
  // Never destroyed: scan tasks may still be draining when static
  // destructors run (the serving pools are leaked for the same reason).
  static ThreadPool* pool =
      new ThreadPool(0, ThreadPoolOptions{.numa_pin = true});
  return *pool;
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body) {
  if (count == 0) return;
  size_t num_threads = pool->NumThreads();
  size_t num_chunks = std::min(count, num_threads * 4);
  size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < num_chunks; ++c) {
    pool->Submit([&next, count, chunk, &body] {
      while (true) {
        size_t begin = next.fetch_add(chunk);
        if (begin >= count) return;
        size_t end = std::min(begin + chunk, count);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace vq
