#include "util/thread_pool.h"

#include <algorithm>

namespace vq {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

size_t ThreadPool::PendingTasks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return in_flight_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body) {
  if (count == 0) return;
  size_t num_threads = pool->NumThreads();
  size_t num_chunks = std::min(count, num_threads * 4);
  size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < num_chunks; ++c) {
    pool->Submit([&next, count, chunk, &body] {
      while (true) {
        size_t begin = next.fetch_add(chunk);
        if (begin >= count) return;
        size_t end = std::min(begin + chunk, count);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace vq
