// Minimal RFC-4180-ish CSV reading/writing (quotes, embedded separators).
#ifndef VQ_UTIL_CSV_H_
#define VQ_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace vq {

/// \brief Parsed CSV contents: a header row plus data rows.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a column by name, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Parses CSV text. The first record is treated as the header. Supports
/// double-quoted fields with embedded commas, quotes ("") and newlines.
Result<CsvData> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvData> ReadCsvFile(const std::string& path);

/// Serializes rows to CSV text, quoting only where necessary.
std::string ToCsv(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows);

/// Writes CSV text to a file.
Status WriteCsvFile(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace vq

#endif  // VQ_UTIL_CSV_H_
