#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vq {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = d;
  return j;
}

Json Json::Int(int64_t i) { return Number(static_cast<double>(i)); }

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  assert(is_bool());
  return bool_;
}

double Json::AsDouble() const {
  assert(is_number());
  return number_;
}

int64_t Json::AsInt() const {
  assert(is_number());
  return static_cast<int64_t>(std::llround(number_));
}

const std::string& Json::AsString() const {
  assert(is_string());
  return string_;
}

size_t Json::Size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::At(size_t index) const {
  assert(is_array() && index < array_.size());
  return array_[index];
}

void Json::Append(Json value) {
  assert(is_array());
  array_.push_back(std::move(value));
}

const Json* Json::Get(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(const std::string& key, Json value) {
  assert(is_object());
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::Members() const {
  assert(is_object());
  return object_;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : fallback;
}

std::string Json::GetString(const std::string& key, const std::string& fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

namespace {

void EscapeStringTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(double d, std::string* out) {
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: NumberTo(number_, out); break;
    case Type::kString: EscapeStringTo(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) { *out += "[]"; break; }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) { *out += "{}"; break; }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        EscapeStringTo(object_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    Json value;
    VQ_RETURN_IF_ERROR(ParseValue(&value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        std::string s;
        VQ_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = Json::Bool(true);
          return Status::OK();
        }
        return Err("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = Json::Bool(false);
          return Status::OK();
        }
        return Err("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = Json::Null();
          return Status::OK();
        }
        return Err("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // configurations are ASCII in practice).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("invalid number '" + token + "'");
    *out = Json::Number(value);
    return Status::OK();
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      Json element;
      VQ_RETURN_IF_ERROR(ParseValue(&element));
      out->Append(std::move(element));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Err("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      VQ_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':' in object");
      SkipWs();
      Json value;
      VQ_RETURN_IF_ERROR(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Err("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace vq
