// Online scan-planner statistics: EWMAs of the observed per-row costs of the
// two conjunctive-filter execution paths (posting-list intersection vs
// vectorized column scan), fed back into the postings-vs-scan decision by
// relational/scan_planner.h. Lives in util/ so storage/index.h can hang one
// instance off every lazily built TableIndex (per-table statistics) without
// a storage -> relational dependency.
#ifndef VQ_UTIL_SCAN_STATS_H_
#define VQ_UTIL_SCAN_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace vq {

/// \brief Online planner statistics: EWMA of the observed per-row costs of
/// the two execution paths, fed back into the postings-vs-scan decision.
///
/// The fixed cost_factor of 4 encodes "one galloping probe costs about four
/// row comparisons" -- true on the machine it was tuned on, wrong elsewhere
/// (cache sizes, gather latency and branch predictors move the ratio).
/// PlannedFilterRows times every execution it runs and records
/// seconds-per-driver-row (postings) or seconds-per-table-row (scan); the
/// learned cost factor is the ratio of the two EWMAs, so the planner adapts
/// to the hardware it is actually running on. All methods are thread-safe
/// and lock-free (relaxed atomics + CAS on the EWMAs): the filter funnel is
/// on every serving worker's path, so the shared statistics must never
/// serialize it. A torn read across the two EWMAs only skews one heuristic
/// decision, never correctness -- both execution paths return identical
/// rows.
class ScanStats {
 public:
  /// EWMA smoothing weight per sample; small enough that one descheduled
  /// outlier execution cannot flip the planner.
  static constexpr double kAlpha = 0.05;
  /// Learned-factor clamp: keeps a cold or pathological EWMA pair from
  /// planning postings for unselective predicates (or never using them).
  static constexpr double kMinFactor = 1.0;
  static constexpr double kMaxFactor = 64.0;
  /// Every kProbePeriod-th eligible planning decision executes the path the
  /// planner did NOT choose (see TakeProbe). Only the executed path is
  /// timed, so without probes an outlier streak that pushes the factor to a
  /// clamp starves the disfavored path of samples forever -- the EWMA that
  /// caused the bad decision can never be corrected by the decisions it
  /// causes. A probe costs the DISFAVORED path's full price (up to
  /// ~kMaxFactor times the favored one), so the period must dwarf the
  /// clamp, not just be "rare" by count: with kProbePeriod >> kMaxFactor
  /// the worst-case TIME tax is ~kMaxFactor / kProbePeriod (~6%) of the
  /// eligible-filter budget, while recovery from a fully clamped factor
  /// still needs only a few dozen probes.
  static constexpr uint64_t kProbePeriod = 1024;

  void RecordPostings(size_t driver_rows, double seconds);
  void RecordScan(size_t table_rows, double seconds);

  /// The adapted cost factor, clamped to [kMinFactor, kMaxFactor]; returns
  /// `fallback` until BOTH paths have at least one sample (a lone EWMA says
  /// nothing about the ratio).
  double CostFactor(double fallback) const;

  /// Counts one eligible planning decision (a multi-predicate conjunction
  /// where both paths could run) and returns true when this decision is the
  /// period's forced-alternate-path probe: the caller must execute -- and
  /// record -- the strategy the planner disfavored, so both EWMAs keep
  /// training even after a clamp.
  bool TakeProbe();

  uint64_t postings_samples() const;
  uint64_t scan_samples() const;
  /// Forced-alternate-path probes taken so far.
  uint64_t probes() const;
  /// Current EWMAs in nanoseconds per (driver|table) row; 0 before samples.
  double postings_ns_per_row() const;
  double scan_ns_per_row() const;

 private:
  /// 0.0 doubles as "no sample yet" (a real observation is never exactly 0:
  /// Record* rejects non-positive seconds).
  static void RecordInto(std::atomic<double>* ewma, std::atomic<uint64_t>* samples,
                         size_t rows, double seconds);

  std::atomic<double> ewma_postings_seconds_per_row_{0.0};
  std::atomic<double> ewma_scan_seconds_per_row_{0.0};
  std::atomic<uint64_t> postings_samples_{0};
  std::atomic<uint64_t> scan_samples_{0};
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> probes_{0};
};

}  // namespace vq

#endif  // VQ_UTIL_SCAN_STATS_H_
