#include "util/atomic_file.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "util/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#define VQ_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#else
#define VQ_HAVE_FSYNC 0
#endif

namespace vq {

namespace {

/// Distinguishes concurrent writers within one process; combined with the
/// pid it distinguishes writers across processes sharing a directory.
std::atomic<uint64_t> g_temp_counter{0};

uint64_t ProcessId() {
#if VQ_HAVE_FSYNC
  return static_cast<uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Flushes a file's (or directory's) blocks to stable storage. Best-effort
/// on platforms or filesystems without fsync semantics.
Status SyncPath(const std::string& path, bool required) {
#if VQ_HAVE_FSYNC
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return required ? Status::IOError("cannot open '" + path + "' for fsync")
                    : Status::OK();
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) {
    return Status::IOError("fsync of '" + path + "' failed");
  }
#else
  (void)path;
  (void)required;
#endif
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  if (fault::Injected(fault::kAtomicWrite)) {
    return Status::IOError("fault injected: " +
                           std::string(fault::kAtomicWrite) + " ('" + path +
                           "')");
  }
  // relaxed: only uniqueness of the stamp matters.
  uint64_t stamp = g_temp_counter.fetch_add(1, std::memory_order_relaxed);
  std::string temp = path + ".tmp." + std::to_string(ProcessId()) + "." +
                     std::to_string(stamp);
  {
    std::ofstream out(temp, std::ios::binary);
    if (!out) return Status::IOError("cannot open '" + temp + "' for writing");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.close();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return Status::IOError("write to '" + temp + "' failed");
    }
  }
  // Data must be durable BEFORE the rename is, or a crash between the two
  // journal commits leaves a truncated file under the final name.
  Status synced = SyncPath(temp, /*required=*/true);
  if (!synced.ok()) {
    std::error_code ec;
    std::filesystem::remove(temp, ec);
    return synced;
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return Status::IOError("cannot replace '" + path + "': " + ec.message());
  }
  // Directory fsync makes the rename itself durable; failure here cannot
  // tear the file (both names point at complete contents), so best-effort.
  std::string parent = std::filesystem::path(path).parent_path().string();
  (void)SyncPath(parent.empty() ? "." : parent, /*required=*/false);
  return Status::OK();
}

}  // namespace vq
