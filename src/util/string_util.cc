#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace vq {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(haystack[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string FormatCompact(double value, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string out = buf;
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

std::string FormatThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace vq
