#include "util/scan_stats.h"

#include <algorithm>

namespace vq {

void ScanStats::RecordInto(std::atomic<double>* ewma,
                           std::atomic<uint64_t>* samples, size_t rows,
                           double seconds) {
  if (rows == 0 || seconds <= 0.0) return;
  double per_row = seconds / static_cast<double>(rows);
  // Lock-free EWMA: CAS loop over the (0.0 == unset) running value. A lost
  // race re-blends from the winner's value -- every observation still lands
  // with weight ~kAlpha, which is all a smoothing heuristic needs.
  // relaxed: a smoothing heuristic (see above); the sample count is a tally.
  double current = ewma->load(std::memory_order_relaxed);
  double next;
  do {
    next = current == 0.0 ? per_row : (1.0 - kAlpha) * current + kAlpha * per_row;
  } while (!ewma->compare_exchange_weak(current, next, std::memory_order_relaxed));
  samples->fetch_add(1, std::memory_order_relaxed);
}

void ScanStats::RecordPostings(size_t driver_rows, double seconds) {
  RecordInto(&ewma_postings_seconds_per_row_, &postings_samples_, driver_rows,
             seconds);
}

void ScanStats::RecordScan(size_t table_rows, double seconds) {
  RecordInto(&ewma_scan_seconds_per_row_, &scan_samples_, table_rows, seconds);
}

double ScanStats::CostFactor(double fallback) const {
  // relaxed: heuristic reads; any recent-enough EWMA value is fine.
  double postings = ewma_postings_seconds_per_row_.load(std::memory_order_relaxed);
  double scan = ewma_scan_seconds_per_row_.load(std::memory_order_relaxed);
  if (postings <= 0.0 || scan <= 0.0) return fallback;  // a path is unsampled
  return std::clamp(postings / scan, kMinFactor, kMaxFactor);
}

bool ScanStats::TakeProbe() {
  // relaxed: round-robin probe counter; only the modulus matters.
  uint64_t decision = decisions_.fetch_add(1, std::memory_order_relaxed);
  if (decision % kProbePeriod != kProbePeriod - 1) return false;
  probes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t ScanStats::postings_samples() const {
  // relaxed: statistical read.
  return postings_samples_.load(std::memory_order_relaxed);
}

uint64_t ScanStats::scan_samples() const {
  // relaxed: statistical read.
  return scan_samples_.load(std::memory_order_relaxed);
}

uint64_t ScanStats::probes() const {
  // relaxed: statistical read.
  return probes_.load(std::memory_order_relaxed);
}

double ScanStats::postings_ns_per_row() const {
  // relaxed: statistical read.
  return ewma_postings_seconds_per_row_.load(std::memory_order_relaxed) * 1e9;
}

double ScanStats::scan_ns_per_row() const {
  // relaxed: statistical read.
  return ewma_scan_seconds_per_row_.load(std::memory_order_relaxed) * 1e9;
}

}  // namespace vq
