#include "util/simd.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

// The AVX2 section relies on GCC/Clang-only constructs (per-function
// target attributes, __builtin_cpu_supports), so MSVC x64 (_M_X64 without
// __GNUC__) deliberately falls back to scalar-only.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VQ_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define VQ_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace vq {
namespace simd {

namespace {

// --------------------------------------------------------------- scalar
// Straight loops, written to visit elements in exactly the order the seed
// implementations did: the forced-scalar configuration is bit-identical to
// the retained *Reference paths, which makes it the oracle for the others.

uint64_t OrPopcountScalar(const uint64_t* const* sets, size_t num_sets,
                          size_t num_words, uint64_t* covered) {
  uint64_t total = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t acc = 0;
    for (size_t s = 0; s < num_sets; ++s) acc |= sets[s][w];
    covered[w] = acc;
    total += static_cast<uint64_t>(std::popcount(acc));
  }
  return total;
}

double MaskedSum64Scalar(const double* block, uint64_t mask) {
  double sum = 0.0;
  while (mask != 0) {
    sum += block[std::countr_zero(mask)];
    mask &= mask - 1;
  }
  return sum;
}

double WeightedSumScalar(const double* values, const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += values[i] * weights[i];
  return sum;
}

double WeightedAbsDevScalar(double center, const double* values,
                            const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::fabs(center - values[i]) * weights[i];
  return sum;
}

double PositiveGainScalar(const double* current, const double* devs,
                          const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    double gain = current[k] - devs[k];
    if (gain > 0.0) sum += gain * weights[k];
  }
  return sum;
}

double GatherWeightedSumScalar(const double* dense, const uint32_t* rows,
                               const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) sum += dense[rows[k]] * weights[k];
  return sum;
}

double GatherPositiveGainScalar(const double* dense, const uint32_t* rows,
                                const double* devs, const double* weights,
                                size_t n) {
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    double gain = dense[rows[k]] - devs[k];
    if (gain > 0.0) sum += gain * weights[k];
  }
  return sum;
}

double MinUpdateScalar(double* dense, const uint32_t* rows, const double* devs,
                       const double* weights, size_t n) {
  double reduction = 0.0;
  for (size_t k = 0; k < n; ++k) {
    double current = dense[rows[k]];
    if (devs[k] < current) {
      reduction += (current - devs[k]) * weights[k];
      dense[rows[k]] = devs[k];
    }
  }
  return reduction;
}

size_t ArgMaxScalar(const double* values, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

double MaskedSingleFactScalar(double value, const double* targets,
                              const double* weights,
                              const double* prior_dev_weighted, uint64_t mask) {
  double sum = 0.0;
  while (mask != 0) {
    int i = std::countr_zero(mask);
    mask &= mask - 1;
    double fact_dev = std::fabs(value - targets[i]) * weights[i];
    sum += fact_dev < prior_dev_weighted[i] ? fact_dev : prior_dev_weighted[i];
  }
  return sum;
}

const Kernels kScalarKernels = {
    "scalar",           OrPopcountScalar,     MaskedSum64Scalar,
    MaskedSingleFactScalar,
    WeightedSumScalar,  WeightedAbsDevScalar, PositiveGainScalar,
    GatherWeightedSumScalar, GatherPositiveGainScalar,
    MinUpdateScalar,    ArgMaxScalar,
};

// ----------------------------------------------------------------- AVX2
// Compiled with per-function target attributes so the translation unit (and
// the rest of the library) keeps the generic x86-64 baseline; the dispatcher
// only hands these out after __builtin_cpu_supports("avx2") says yes.
#if VQ_SIMD_X86

#define VQ_AVX2 __attribute__((target("avx2,fma,popcnt")))

VQ_AVX2 inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

VQ_AVX2 inline __m256d Abs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

/// Gather of 4 doubles via the masked form with an explicit zero source:
/// the plain _mm256_i32gather_pd leaves its pass-through operand undefined,
/// which GCC's -Wmaybe-uninitialized flags from inside avx2intrin.h. Same
/// vgatherdpd instruction, warning-free.
VQ_AVX2 inline __m256d Gather4(const double* base, __m128i idx) {
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx, all, 8);
}

VQ_AVX2 uint64_t OrPopcountAvx2(const uint64_t* const* sets, size_t num_sets,
                                size_t num_words, uint64_t* covered) {
  uint64_t total = 0;
  size_t w = 0;
  if (num_sets > 0) {
    for (; w + 4 <= num_words; w += 4) {
      __m256i acc = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(sets[0] + w));
      for (size_t s = 1; s < num_sets; ++s) {
        acc = _mm256_or_si256(
            acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sets[s] + w)));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(covered + w), acc);
      total += static_cast<uint64_t>(_mm_popcnt_u64(covered[w]));
      total += static_cast<uint64_t>(_mm_popcnt_u64(covered[w + 1]));
      total += static_cast<uint64_t>(_mm_popcnt_u64(covered[w + 2]));
      total += static_cast<uint64_t>(_mm_popcnt_u64(covered[w + 3]));
    }
  }
  for (; w < num_words; ++w) {
    uint64_t acc = 0;
    for (size_t s = 0; s < num_sets; ++s) acc |= sets[s][w];
    covered[w] = acc;
    total += static_cast<uint64_t>(_mm_popcnt_u64(acc));
  }
  return total;
}

VQ_AVX2 double MaskedSum64Avx2(const double* block, uint64_t mask) {
  if (mask == 0) return 0.0;
  // Expand each nibble of the mask into four qword lane masks and sum the
  // selected lanes; the whole 64-double block must be readable (the loads
  // touch cleared lanes), which Evaluator guarantees by padding.
  const __m256i kBitSelect = _mm256_set_epi64x(8, 4, 2, 1);
  __m256d acc = _mm256_setzero_pd();
  for (int i = 0; i < 64; i += 4) {
    uint64_t nibble = (mask >> i) & 0xF;
    if (nibble == 0) continue;
    __m256i sel = _mm256_and_si256(
        _mm256_set1_epi64x(static_cast<long long>(nibble)), kBitSelect);
    __m256d lane_mask = _mm256_castsi256_pd(_mm256_cmpeq_epi64(sel, kBitSelect));
    acc = _mm256_add_pd(acc,
                        _mm256_and_pd(lane_mask, _mm256_loadu_pd(block + i)));
  }
  return HorizontalSum(acc);
}

VQ_AVX2 double WeightedSumAvx2(const double* values, const double* weights,
                               size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + i),
                           _mm256_loadu_pd(weights + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(values + i + 4),
                           _mm256_loadu_pd(weights + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + i),
                           _mm256_loadu_pd(weights + i), acc0);
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += values[i] * weights[i];
  return sum;
}

VQ_AVX2 double WeightedAbsDevAvx2(double center, const double* values,
                                  const double* weights, size_t n) {
  const __m256d vcenter = _mm256_set1_pd(center);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d d0 = Abs(_mm256_sub_pd(vcenter, _mm256_loadu_pd(values + i)));
    __m256d d1 = Abs(_mm256_sub_pd(vcenter, _mm256_loadu_pd(values + i + 4)));
    acc0 = _mm256_fmadd_pd(d0, _mm256_loadu_pd(weights + i), acc0);
    acc1 = _mm256_fmadd_pd(d1, _mm256_loadu_pd(weights + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256d d = Abs(_mm256_sub_pd(vcenter, _mm256_loadu_pd(values + i)));
    acc0 = _mm256_fmadd_pd(d, _mm256_loadu_pd(weights + i), acc0);
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += std::fabs(center - values[i]) * weights[i];
  return sum;
}

VQ_AVX2 double PositiveGainAvx2(const double* current, const double* devs,
                                const double* weights, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256d g0 = _mm256_max_pd(
        _mm256_sub_pd(_mm256_loadu_pd(current + k), _mm256_loadu_pd(devs + k)),
        zero);
    __m256d g1 = _mm256_max_pd(
        _mm256_sub_pd(_mm256_loadu_pd(current + k + 4),
                      _mm256_loadu_pd(devs + k + 4)),
        zero);
    acc0 = _mm256_fmadd_pd(g0, _mm256_loadu_pd(weights + k), acc0);
    acc1 = _mm256_fmadd_pd(g1, _mm256_loadu_pd(weights + k + 4), acc1);
  }
  for (; k + 4 <= n; k += 4) {
    __m256d gain = _mm256_max_pd(
        _mm256_sub_pd(_mm256_loadu_pd(current + k), _mm256_loadu_pd(devs + k)),
        zero);
    acc0 = _mm256_fmadd_pd(gain, _mm256_loadu_pd(weights + k), acc0);
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; k < n; ++k) {
    double gain = current[k] - devs[k];
    if (gain > 0.0) sum += gain * weights[k];
  }
  return sum;
}

VQ_AVX2 double GatherWeightedSumAvx2(const double* dense, const uint32_t* rows,
                                     const double* weights, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + k));
    __m256d gathered = Gather4(dense, idx);
    acc = _mm256_fmadd_pd(gathered, _mm256_loadu_pd(weights + k), acc);
  }
  double sum = HorizontalSum(acc);
  for (; k < n; ++k) sum += dense[rows[k]] * weights[k];
  return sum;
}

VQ_AVX2 double GatherPositiveGainAvx2(const double* dense, const uint32_t* rows,
                                      const double* devs, const double* weights,
                                      size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + k));
    __m256d gathered = Gather4(dense, idx);
    __m256d gain = _mm256_sub_pd(gathered, _mm256_loadu_pd(devs + k));
    gain = _mm256_max_pd(gain, zero);  // branchless max(0, gain)
    acc = _mm256_fmadd_pd(gain, _mm256_loadu_pd(weights + k), acc);
  }
  double sum = HorizontalSum(acc);
  for (; k < n; ++k) {
    double gain = dense[rows[k]] - devs[k];
    if (gain > 0.0) sum += gain * weights[k];
  }
  return sum;
}

VQ_AVX2 double MinUpdateAvx2(double* dense, const uint32_t* rows,
                             const double* devs, const double* weights,
                             size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + k));
    __m256d current = Gather4(dense, idx);
    __m256d dv = _mm256_loadu_pd(devs + k);
    __m256d lowered = _mm256_cmp_pd(dv, current, _CMP_LT_OQ);
    __m256d delta = _mm256_and_pd(
        lowered, _mm256_mul_pd(_mm256_sub_pd(current, dv),
                               _mm256_loadu_pd(weights + k)));
    acc = _mm256_add_pd(acc, delta);
    // AVX2 has no scatter: store the blended minima lane by lane. The CSR
    // row lists hold distinct indices, so the gather above never observes a
    // row this batch also writes.
    alignas(32) double updated[4];
    _mm256_store_pd(updated, _mm256_blendv_pd(current, dv, lowered));
    dense[rows[k]] = updated[0];
    dense[rows[k + 1]] = updated[1];
    dense[rows[k + 2]] = updated[2];
    dense[rows[k + 3]] = updated[3];
  }
  double reduction = HorizontalSum(acc);
  for (; k < n; ++k) {
    double current = dense[rows[k]];
    if (devs[k] < current) {
      reduction += (current - devs[k]) * weights[k];
      dense[rows[k]] = devs[k];
    }
  }
  return reduction;
}

VQ_AVX2 double MaskedSingleFactAvx2(double value, const double* targets,
                                    const double* weights,
                                    const double* prior_dev_weighted,
                                    uint64_t mask) {
  if (mask == 0) return 0.0;
  // Same nibble expansion as MaskedSum64Avx2 (and the same whole-block
  // readability requirement); each selected lane contributes the smaller of
  // its weighted fact deviation and its precomputed weighted prior
  // deviation.
  const __m256i kBitSelect = _mm256_set_epi64x(8, 4, 2, 1);
  const __m256d vvalue = _mm256_set1_pd(value);
  __m256d acc = _mm256_setzero_pd();
  for (int i = 0; i < 64; i += 4) {
    uint64_t nibble = (mask >> i) & 0xF;
    if (nibble == 0) continue;
    __m256i sel = _mm256_and_si256(
        _mm256_set1_epi64x(static_cast<long long>(nibble)), kBitSelect);
    __m256d lane_mask = _mm256_castsi256_pd(_mm256_cmpeq_epi64(sel, kBitSelect));
    __m256d fact_dev = _mm256_mul_pd(
        Abs(_mm256_sub_pd(vvalue, _mm256_loadu_pd(targets + i))),
        _mm256_loadu_pd(weights + i));
    __m256d contrib =
        _mm256_min_pd(fact_dev, _mm256_loadu_pd(prior_dev_weighted + i));
    acc = _mm256_add_pd(acc, _mm256_and_pd(lane_mask, contrib));
  }
  return HorizontalSum(acc);
}

VQ_AVX2 size_t ArgMaxAvx2(const double* values, size_t n) {
  if (n < 8) return ArgMaxScalar(values, n);
  __m256d best = _mm256_loadu_pd(values);
  __m256i best_idx = _mm256_set_epi64x(3, 2, 1, 0);
  size_t k = 4;
  for (; k + 4 <= n; k += 4) {
    __m256d v = _mm256_loadu_pd(values + k);
    __m256i idx = _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(k)),
                                   _mm256_set_epi64x(3, 2, 1, 0));
    // Strictly-greater keeps the earliest occurrence within each lane.
    __m256d gt = _mm256_cmp_pd(v, best, _CMP_GT_OQ);
    best = _mm256_blendv_pd(best, v, gt);
    best_idx = _mm256_blendv_epi8(best_idx, idx, _mm256_castpd_si256(gt));
  }
  alignas(32) double lane_val[4];
  alignas(32) int64_t lane_idx[4];
  _mm256_store_pd(lane_val, best);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx), best_idx);
  // Cross-lane reduction: greatest value wins, the smaller index on ties, so
  // the overall result is the lowest index attaining the maximum.
  double best_value = lane_val[0];
  size_t best_index = static_cast<size_t>(lane_idx[0]);
  for (int lane = 1; lane < 4; ++lane) {
    size_t index = static_cast<size_t>(lane_idx[lane]);
    if (lane_val[lane] > best_value ||
        (lane_val[lane] == best_value && index < best_index)) {
      best_value = lane_val[lane];
      best_index = index;
    }
  }
  for (; k < n; ++k) {
    if (values[k] > best_value) {
      best_value = values[k];
      best_index = k;
    }
  }
  return best_index;
}

const Kernels kAvx2Kernels = {
    "avx2",            OrPopcountAvx2,     MaskedSum64Avx2,
    MaskedSingleFactAvx2,
    WeightedSumAvx2,   WeightedAbsDevAvx2, PositiveGainAvx2,
    GatherWeightedSumAvx2, GatherPositiveGainAvx2,
    MinUpdateAvx2,     ArgMaxAvx2,
};

#endif  // VQ_SIMD_X86

// --------------------------------------------------------------- AVX-512
// Eight-lane kernels guarded by __builtin_cpu_supports("avx512f") (plus
// popcnt); everything below sticks to the F foundation subset -- 512-bit
// floating-point AND/ANDNOT (a DQ extension) is spelled through the epi64
// forms, and no VL compactions are used. The big structural win over avx2:
// fault-suppressing masked loads (_mm512_maskz_loadu_pd) make every tail and
// bitset mask a first-class lane mask, so these kernels never read past the
// live data -- no scalar tail loops, and no caller-side padding requirement.
#if VQ_SIMD_X86

// GCC's avx512fintrin.h builds even plain intrinsics (_mm512_max_pd, the
// gathers, the reduce helpers) on _mm512_undefined_pd(), which
// -W(maybe-)uninitialized flags once they inline into user code. The
// Gather4-style explicit-zero workaround used for avx2 cannot cover them
// all, so the whole section silences just those two warnings.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#define VQ_AVX512 __attribute__((target("avx512f,popcnt")))

VQ_AVX512 inline __m512d Abs512(__m512d v) {
  // No _mm512_andnot_pd in AVX512F (that is DQ); same bit trick via epi64.
  return _mm512_castsi512_pd(_mm512_andnot_si512(
      _mm512_set1_epi64(static_cast<long long>(0x8000000000000000ull)),
      _mm512_castpd_si512(v)));
}

/// Tail mask for the final `rem` (< 8) lanes.
VQ_AVX512 inline __mmask8 TailMask(size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

/// Masked gather with the index tail staged through a zeroed stack buffer:
/// loading 8 indices when only `rem` are live would read past the row list,
/// and AVX-512F has no maskz 256-bit integer load (that is VL). The gather
/// itself is masked, so the zero-filled index lanes are never dereferenced.
VQ_AVX512 inline __m512d GatherTail(const double* base, const uint32_t* rows,
                                    size_t rem, __mmask8 m) {
  alignas(32) uint32_t idx[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t k = 0; k < rem; ++k) idx[k] = rows[k];
  return _mm512_mask_i32gather_pd(
      _mm512_setzero_pd(), m,
      _mm256_load_si256(reinterpret_cast<const __m256i*>(idx)), base, 8);
}

VQ_AVX512 uint64_t OrPopcountAvx512(const uint64_t* const* sets, size_t num_sets,
                                    size_t num_words, uint64_t* covered) {
  uint64_t total = 0;
  size_t w = 0;
  if (num_sets > 0) {
    for (; w + 8 <= num_words; w += 8) {
      __m512i acc = _mm512_loadu_si512(sets[0] + w);
      for (size_t s = 1; s < num_sets; ++s) {
        acc = _mm512_or_si512(acc, _mm512_loadu_si512(sets[s] + w));
      }
      _mm512_storeu_si512(covered + w, acc);
      for (int i = 0; i < 8; ++i) {
        total += static_cast<uint64_t>(_mm_popcnt_u64(covered[w + i]));
      }
    }
  }
  for (; w < num_words; ++w) {
    uint64_t acc = 0;
    for (size_t s = 0; s < num_sets; ++s) acc |= sets[s][w];
    covered[w] = acc;
    total += static_cast<uint64_t>(_mm_popcnt_u64(acc));
  }
  return total;
}

VQ_AVX512 double MaskedSum64Avx512(const double* block, uint64_t mask) {
  if (mask == 0) return 0.0;
  // Each byte of the row mask IS the lane mask of one maskz load: selected
  // lanes arrive, cleared lanes are architecturally zero and never touched.
  __m512d acc = _mm512_setzero_pd();
  for (int i = 0; i < 64; i += 8) {
    __mmask8 m = static_cast<__mmask8>((mask >> i) & 0xFF);
    if (m == 0) continue;
    acc = _mm512_add_pd(acc, _mm512_maskz_loadu_pd(m, block + i));
  }
  return _mm512_reduce_add_pd(acc);
}

VQ_AVX512 double MaskedSingleFactAvx512(double value, const double* targets,
                                        const double* weights,
                                        const double* prior_dev_weighted,
                                        uint64_t mask) {
  if (mask == 0) return 0.0;
  const __m512d vvalue = _mm512_set1_pd(value);
  __m512d acc = _mm512_setzero_pd();
  for (int i = 0; i < 64; i += 8) {
    __mmask8 m = static_cast<__mmask8>((mask >> i) & 0xFF);
    if (m == 0) continue;
    __m512d fact_dev = _mm512_mul_pd(
        Abs512(_mm512_sub_pd(vvalue, _mm512_maskz_loadu_pd(m, targets + i))),
        _mm512_maskz_loadu_pd(m, weights + i));
    // maskz min: unselected lanes contribute exactly 0 regardless of what
    // the (zeroed) masked loads produced above.
    acc = _mm512_add_pd(
        acc, _mm512_maskz_min_pd(
                 m, fact_dev, _mm512_maskz_loadu_pd(m, prior_dev_weighted + i)));
  }
  return _mm512_reduce_add_pd(acc);
}

VQ_AVX512 double WeightedSumAvx512(const double* values, const double* weights,
                                   size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(values + i),
                           _mm512_loadu_pd(weights + i), acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(values + i + 8),
                           _mm512_loadu_pd(weights + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(values + i),
                           _mm512_loadu_pd(weights + i), acc0);
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    acc0 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(m, values + i),
                           _mm512_maskz_loadu_pd(m, weights + i), acc0);
  }
  return _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
}

VQ_AVX512 double WeightedAbsDevAvx512(double center, const double* values,
                                      const double* weights, size_t n) {
  const __m512d vcenter = _mm512_set1_pd(center);
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512d d0 = Abs512(_mm512_sub_pd(vcenter, _mm512_loadu_pd(values + i)));
    __m512d d1 = Abs512(_mm512_sub_pd(vcenter, _mm512_loadu_pd(values + i + 8)));
    acc0 = _mm512_fmadd_pd(d0, _mm512_loadu_pd(weights + i), acc0);
    acc1 = _mm512_fmadd_pd(d1, _mm512_loadu_pd(weights + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    __m512d d = Abs512(_mm512_sub_pd(vcenter, _mm512_loadu_pd(values + i)));
    acc0 = _mm512_fmadd_pd(d, _mm512_loadu_pd(weights + i), acc0);
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512d d = Abs512(_mm512_sub_pd(vcenter, _mm512_maskz_loadu_pd(m, values + i)));
    // The masked weight lanes are zero, so the |center - 0| garbage in the
    // unselected deviation lanes multiplies away.
    acc0 = _mm512_fmadd_pd(d, _mm512_maskz_loadu_pd(m, weights + i), acc0);
  }
  return _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
}

VQ_AVX512 double PositiveGainAvx512(const double* current, const double* devs,
                                    const double* weights, size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  __m512d acc = _mm512_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m512d gain = _mm512_max_pd(
        _mm512_sub_pd(_mm512_loadu_pd(current + k), _mm512_loadu_pd(devs + k)),
        zero);
    acc = _mm512_fmadd_pd(gain, _mm512_loadu_pd(weights + k), acc);
  }
  if (k < n) {
    __mmask8 m = TailMask(n - k);
    __m512d gain = _mm512_max_pd(
        _mm512_sub_pd(_mm512_maskz_loadu_pd(m, current + k),
                      _mm512_maskz_loadu_pd(m, devs + k)),
        zero);
    acc = _mm512_fmadd_pd(gain, _mm512_maskz_loadu_pd(m, weights + k), acc);
  }
  return _mm512_reduce_add_pd(acc);
}

VQ_AVX512 double GatherWeightedSumAvx512(const double* dense,
                                         const uint32_t* rows,
                                         const double* weights, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + k));
    acc = _mm512_fmadd_pd(_mm512_i32gather_pd(idx, dense, 8),
                          _mm512_loadu_pd(weights + k), acc);
  }
  if (k < n) {
    __mmask8 m = TailMask(n - k);
    acc = _mm512_fmadd_pd(GatherTail(dense, rows + k, n - k, m),
                          _mm512_maskz_loadu_pd(m, weights + k), acc);
  }
  return _mm512_reduce_add_pd(acc);
}

VQ_AVX512 double GatherPositiveGainAvx512(const double* dense,
                                          const uint32_t* rows,
                                          const double* devs,
                                          const double* weights, size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  __m512d acc = _mm512_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + k));
    __m512d gain = _mm512_max_pd(
        _mm512_sub_pd(_mm512_i32gather_pd(idx, dense, 8),
                      _mm512_loadu_pd(devs + k)),
        zero);
    acc = _mm512_fmadd_pd(gain, _mm512_loadu_pd(weights + k), acc);
  }
  if (k < n) {
    __mmask8 m = TailMask(n - k);
    __m512d gain = _mm512_max_pd(
        _mm512_sub_pd(GatherTail(dense, rows + k, n - k, m),
                      _mm512_maskz_loadu_pd(m, devs + k)),
        zero);
    acc = _mm512_fmadd_pd(gain, _mm512_maskz_loadu_pd(m, weights + k), acc);
  }
  return _mm512_reduce_add_pd(acc);
}

VQ_AVX512 double MinUpdateAvx512(double* dense, const uint32_t* rows,
                                 const double* devs, const double* weights,
                                 size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + k));
    __m512d current = _mm512_i32gather_pd(idx, dense, 8);
    __m512d dv = _mm512_loadu_pd(devs + k);
    __mmask8 lowered = _mm512_cmp_pd_mask(dv, current, _CMP_LT_OQ);
    acc = _mm512_add_pd(
        acc, _mm512_maskz_mul_pd(lowered, _mm512_sub_pd(current, dv),
                                 _mm512_loadu_pd(weights + k)));
    // Real scatter (unlike avx2's lane-by-lane stores), masked to the
    // lowered rows. Distinct CSR indices: the gather above never observes a
    // row this batch also writes.
    _mm512_mask_i32scatter_pd(dense, lowered, idx, dv, 8);
  }
  double reduction = _mm512_reduce_add_pd(acc);
  for (; k < n; ++k) {
    double current = dense[rows[k]];
    if (devs[k] < current) {
      reduction += (current - devs[k]) * weights[k];
      dense[rows[k]] = devs[k];
    }
  }
  return reduction;
}

VQ_AVX512 size_t ArgMaxAvx512(const double* values, size_t n) {
  if (n < 16) return ArgMaxScalar(values, n);
  __m512d best = _mm512_loadu_pd(values);
  __m512i best_idx = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i kLane = best_idx;
  size_t k = 8;
  for (; k + 8 <= n; k += 8) {
    __m512d v = _mm512_loadu_pd(values + k);
    __m512i idx =
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(k)), kLane);
    // Strictly-greater keeps the earliest occurrence within each lane.
    __mmask8 gt = _mm512_cmp_pd_mask(v, best, _CMP_GT_OQ);
    best = _mm512_mask_blend_pd(gt, best, v);
    best_idx = _mm512_mask_blend_epi64(gt, best_idx, idx);
  }
  alignas(64) double lane_val[8];
  alignas(64) int64_t lane_idx[8];
  _mm512_store_pd(lane_val, best);
  _mm512_store_si512(lane_idx, best_idx);
  // Cross-lane reduction: greatest value wins, the smaller index on ties, so
  // the overall result is the lowest index attaining the maximum.
  double best_value = lane_val[0];
  size_t best_index = static_cast<size_t>(lane_idx[0]);
  for (int lane = 1; lane < 8; ++lane) {
    size_t index = static_cast<size_t>(lane_idx[lane]);
    if (lane_val[lane] > best_value ||
        (lane_val[lane] == best_value && index < best_index)) {
      best_value = lane_val[lane];
      best_index = index;
    }
  }
  for (; k < n; ++k) {
    if (values[k] > best_value) {
      best_value = values[k];
      best_index = k;
    }
  }
  return best_index;
}

const Kernels kAvx512Kernels = {
    "avx512",            OrPopcountAvx512,     MaskedSum64Avx512,
    MaskedSingleFactAvx512,
    WeightedSumAvx512,   WeightedAbsDevAvx512, PositiveGainAvx512,
    GatherWeightedSumAvx512, GatherPositiveGainAvx512,
    MinUpdateAvx512,     ArgMaxAvx512,
};

#pragma GCC diagnostic pop

#endif  // VQ_SIMD_X86

// ----------------------------------------------------------------- NEON
// aarch64 ships NEON in the baseline, so no target attributes or CPU probe
// are needed. Two-lane f64 kernels cover the dense reductions; the
// gather-shaped kernels keep the scalar loops (NEON has no gather, and the
// indexed loads dominate those kernels' cost).
#if VQ_SIMD_NEON

inline uint64x2_t LaneMask2(uint64_t two_bits) {
  const uint64x2_t kBitSelect = {1, 2};
  uint64x2_t sel = vandq_u64(vdupq_n_u64(two_bits), kBitSelect);
  return vceqq_u64(sel, kBitSelect);
}

uint64_t OrPopcountNeon(const uint64_t* const* sets, size_t num_sets,
                        size_t num_words, uint64_t* covered) {
  uint64_t total = 0;
  size_t w = 0;
  if (num_sets > 0) {
    for (; w + 2 <= num_words; w += 2) {
      uint64x2_t acc = vld1q_u64(sets[0] + w);
      for (size_t s = 1; s < num_sets; ++s) {
        acc = vorrq_u64(acc, vld1q_u64(sets[s] + w));
      }
      vst1q_u64(covered + w, acc);
      total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(acc)));
    }
  }
  for (; w < num_words; ++w) {
    uint64_t acc = 0;
    for (size_t s = 0; s < num_sets; ++s) acc |= sets[s][w];
    covered[w] = acc;
    total += static_cast<uint64_t>(std::popcount(acc));
  }
  return total;
}

double MaskedSum64Neon(const double* block, uint64_t mask) {
  if (mask == 0) return 0.0;
  float64x2_t acc = vdupq_n_f64(0.0);
  for (int i = 0; i < 64; i += 2) {
    uint64_t pair = (mask >> i) & 0x3;
    if (pair == 0) continue;
    float64x2_t lane = vreinterpretq_f64_u64(
        vandq_u64(LaneMask2(pair), vreinterpretq_u64_f64(vld1q_f64(block + i))));
    acc = vaddq_f64(acc, lane);
  }
  return vaddvq_f64(acc);
}

double WeightedSumNeon(const double* values, const double* weights, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(values + i), vld1q_f64(weights + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(values + i + 2), vld1q_f64(weights + i + 2));
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) sum += values[i] * weights[i];
  return sum;
}

double PositiveGainNeon(const double* current, const double* devs,
                        const double* weights, size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    float64x2_t gain =
        vmaxq_f64(vsubq_f64(vld1q_f64(current + k), vld1q_f64(devs + k)), zero);
    acc = vfmaq_f64(acc, gain, vld1q_f64(weights + k));
  }
  double sum = vaddvq_f64(acc);
  for (; k < n; ++k) {
    double gain = current[k] - devs[k];
    if (gain > 0.0) sum += gain * weights[k];
  }
  return sum;
}

double WeightedAbsDevNeon(double center, const double* values,
                          const double* weights, size_t n) {
  const float64x2_t vcenter = vdupq_n_f64(center);
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t dev = vabsq_f64(vsubq_f64(vcenter, vld1q_f64(values + i)));
    acc = vfmaq_f64(acc, dev, vld1q_f64(weights + i));
  }
  double sum = vaddvq_f64(acc);
  for (; i < n; ++i) sum += std::fabs(center - values[i]) * weights[i];
  return sum;
}

const Kernels kNeonKernels = {
    "neon",            OrPopcountNeon,     MaskedSum64Neon,
    MaskedSingleFactScalar,
    WeightedSumNeon,   WeightedAbsDevNeon, PositiveGainNeon,
    GatherWeightedSumScalar, GatherPositiveGainScalar,
    MinUpdateScalar,   ArgMaxScalar,
};

#endif  // VQ_SIMD_NEON

// -------------------------------------------------------------- dispatch

bool EnvForceScalar() {
  const char* env = std::getenv("VQ_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if VQ_SIMD_X86
// Probe EVERY feature a table's target attribute names: a CPU model (or
// emulation mask) can expose avx2 while hiding fma/popcnt, and handing out
// the table anyway would SIGILL on the first kernel call.
bool SupportsAvx512() {
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("popcnt");
}

bool SupportsAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("popcnt");
}
#endif

/// The best table this build + CPU can run (ignoring overrides).
const Kernels* BestSupported() {
#if VQ_SIMD_X86
  if (SupportsAvx512()) return &kAvx512Kernels;
  if (SupportsAvx2()) return &kAvx2Kernels;
#elif VQ_SIMD_NEON
  return &kNeonKernels;
#endif
  return &kScalarKernels;
}

/// One-shot selection: compile-time pin, then environment, then CPU probe.
const Kernels* Dispatch() {
#if defined(VQ_FORCE_SCALAR_BUILD)
  return &kScalarKernels;
#else
  if (EnvForceScalar()) return &kScalarKernels;
  return BestSupported();
#endif
}

std::atomic<const Kernels*> g_override{nullptr};

}  // namespace

const Kernels& Active() {
  // Latched on first use; the atomic override only serves benches/tests.
  static const Kernels* const selected = Dispatch();
  const Kernels* override_table = g_override.load(std::memory_order_acquire);
  return override_table != nullptr ? *override_table : *selected;
}

const Kernels& Scalar() { return kScalarKernels; }

const std::vector<const Kernels*>& AllImplementations() {
  static const std::vector<const Kernels*> all = [] {
    std::vector<const Kernels*> tables;
    tables.push_back(&kScalarKernels);
    // Vector tables are listed even in a VQ_FORCE_SCALAR build (they are
    // compiled either way) so equivalence tests always exercise them when
    // the CPU can run them; only Active()'s selection is pinned. EVERY
    // runnable table is listed, not just the dispatch winner -- on an
    // AVX-512 machine the avx2 table must stay under test too.
#if VQ_SIMD_X86
    if (SupportsAvx2()) tables.push_back(&kAvx2Kernels);
    if (SupportsAvx512()) tables.push_back(&kAvx512Kernels);
#elif VQ_SIMD_NEON
    tables.push_back(&kNeonKernels);
#endif
    return tables;
  }();
  return all;
}

const Kernels* ByName(const char* name) {
  for (const Kernels* table : AllImplementations()) {
    if (std::strcmp(table->name, name) == 0) return table;
  }
  return nullptr;
}

bool ForcedScalar() {
#if defined(VQ_FORCE_SCALAR_BUILD)
  return true;
#else
  return EnvForceScalar();
#endif
}

void SetActiveForTesting(const Kernels* kernels) {
  g_override.store(kernels, std::memory_order_release);
}

}  // namespace simd
}  // namespace vq
