// Small-buffer vector for per-call scratch on allocation-sensitive paths.
#ifndef VQ_UTIL_SMALL_VECTOR_H_
#define VQ_UTIL_SMALL_VECTOR_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace vq {

/// \brief A push_back-only vector with N elements of inline storage.
///
/// Evaluator::Error runs once per leaf of the exact search and once per
/// served speech; its scratch (speech bitset pointers, fact values,
/// per-row relevant values) is tiny -- bounded by the speech length, which
/// the paper caps at 3 facts -- so a heap-allocating std::vector per call is
/// pure overhead. This buffer lives on the stack up to N elements and only
/// touches the heap beyond that. Restricted to trivial element types: no
/// destructor calls, growth is a memcpy.
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVector is for trivial scratch element types");

 public:
  SmallVector() = default;
  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  /// Grows to `n` default-initialized (uninitialized for scalars) elements.
  explicit SmallVector(size_t n) { resize(n); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void clear() { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // Copy first: `value` may alias an element of this vector, and Grow()
      // frees the buffer it would point into.
      T copied = value;
      Grow(capacity_ * 2);
      data_[size_++] = copied;
      return;
    }
    data_[size_++] = value;
  }

  /// Sets the size; new elements are uninitialized (trivial T).
  void resize(size_t n) {
    if (n > capacity_) Grow(n);
    size_ = n;
  }

 private:
  void Grow(size_t min_capacity) {
    size_t capacity = capacity_;
    while (capacity < min_capacity) capacity *= 2;
    auto grown = std::make_unique<T[]>(capacity);
    std::memcpy(grown.get(), data_, size_ * sizeof(T));
    heap_ = std::move(grown);
    data_ = heap_.get();
    capacity_ = capacity;
  }

  T inline_[N];
  std::unique_ptr<T[]> heap_;
  T* data_ = inline_;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace vq

#endif  // VQ_UTIL_SMALL_VECTOR_H_
