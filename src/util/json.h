// Self-contained JSON value model, parser and writer.
//
// Used for the engine Configuration files (Section III: "The queries to
// consider are described in a Configuration file") and for persisting the
// pre-computed speech store.
#ifndef VQ_UTIL_JSON_H_
#define VQ_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace vq {

/// \brief A JSON value: null, bool, number, string, array or object.
///
/// Object member order is preserved (kept as a vector of pairs) so that
/// serialized configurations diff cleanly.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Int(int64_t i);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; preconditions checked with assert.
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;

  /// Array access.
  size_t Size() const;
  const Json& At(size_t index) const;
  void Append(Json value);

  /// Object access. `Get` returns nullptr if absent.
  const Json* Get(const std::string& key) const;
  void Set(const std::string& key, Json value);
  const std::vector<std::pair<std::string, Json>>& Members() const;

  /// Convenience typed object getters with defaults.
  bool GetBool(const std::string& key, bool fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;

  /// Serialization. `indent` <= 0 yields compact output.
  std::string Dump(int indent = 0) const;

  /// Parses JSON text.
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace vq

#endif  // VQ_UTIL_JSON_H_
