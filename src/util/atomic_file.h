// Crash-safe whole-file replacement, shared by every persistence path
// (learned-speech JSON in serve/registry.cc, dataset snapshots in
// storage/snapshot.cc).
//
// The torn-write hazard this closes has two halves:
//   1. A crash mid-write must never leave a truncated file under the target
//      name -- solved by streaming into a sibling temp file and renaming
//      over the target (rename(2) is atomic within a filesystem).
//   2. The rename must not land before the DATA does. On journaling
//      filesystems a rename can be committed ahead of the temp file's
//      blocks, so a power cut can otherwise materialize a zero-length or
//      partially written file under the final name -- the exact torn state
//      the rename was supposed to prevent. Solved by fsync()ing the temp
//      file before the rename (and best-effort fsync()ing the directory
//      after, so the rename itself survives the crash).
//
// Temp names embed the pid plus a process-wide counter: concurrent writers
// of DIFFERENT targets in one directory (or two processes racing on the
// same target) each stream into their own temp file, and the loser of a
// same-target race is a complete file, never an interleaving.
#ifndef VQ_UTIL_ATOMIC_FILE_H_
#define VQ_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace vq {

/// Atomically replaces the contents of `path` with `contents`. On any error
/// the target is untouched and the temp file is cleaned up best-effort.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace vq

#endif  // VQ_UTIL_ATOMIC_FILE_H_
