// Aligned plain-text tables: every bench binary prints its paper table/figure
// through this so outputs are uniform and diffable.
#ifndef VQ_UTIL_TABLE_PRINTER_H_
#define VQ_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace vq {

/// \brief Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; it may have fewer cells than the header (padded empty).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with FormatCompact.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int decimals = 2);

  /// Renders the table with a header rule. `title` is printed above if set.
  std::string Render(const std::string& title = "") const;

  /// Renders and writes to stdout.
  void Print(const std::string& title = "") const;

  size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") to stdout; benches use this to
/// delimit paper tables/figures in combined logs.
void PrintBanner(const std::string& title);

}  // namespace vq

#endif  // VQ_UTIL_TABLE_PRINTER_H_
