#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace vq {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalCdf(double x, double mean, double stddev) {
  if (stddev <= 0.0) return x >= mean ? 1.0 : 0.0;
  return NormalCdf((x - mean) / stddev);
}

double NormalGreaterProbability(double mu_x, double mu_y, double sigma) {
  if (sigma <= 0.0) return mu_x > mu_y ? 1.0 : (mu_x < mu_y ? 0.0 : 0.5);
  return NormalCdf((mu_x - mu_y) / (std::sqrt(2.0) * sigma));
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace vq
