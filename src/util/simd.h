// Portable SIMD kernel layer for the evaluator/greedy hot paths.
//
// The summarization algorithms spend nearly all their time in a handful of
// reductions over the instance's 64-row bitset blocks (the layout the
// indexed-scan refactor introduced): ORing speech scope bitsets, summing
// weighted prior deviations under a row mask, accumulating weighted
// (positive) deviation gains over CSR scope-row lists, and picking the best
// fact from a utility array. This header exposes exactly those primitives as
// a table of function pointers with three implementations:
//
//   scalar  -- straight loops, bit-identical to the seed code paths; always
//              available and the correctness oracle for the others.
//   avx2    -- x86-64 AVX2(+FMA/POPCNT) four-lane kernels, compiled with
//              per-function target attributes so the library itself still
//              builds for a generic x86-64 baseline (VQ_MARCH_NATIVE off).
//   avx512  -- x86-64 AVX-512F eight-lane kernels. Fault-suppressing masked
//              loads handle every tail and bitset mask directly, so unlike
//              avx2 these kernels never read past the live data (see the
//              masked_sum64 padding note below).
//   neon    -- aarch64 two-lane kernels for the dense reductions (the
//              gather-shaped kernels reuse the scalar loops: NEON has no
//              gather, and the fused compute dominates only on x86).
//
// Dispatch runs ONCE, at the first call of Active(): the CPU is probed
// (__builtin_cpu_supports on x86), the environment override VQ_FORCE_SCALAR=1
// is honored, and the chosen table is latched for the process lifetime, so
// the hot paths pay one pointer indirection and no per-call feature checks.
// Building with -DVQ_FORCE_SCALAR=ON (CMake option) pins the scalar table at
// compile time; the "simd" ctest label runs the equivalence property suite
// under both configurations.
#ifndef VQ_UTIL_SIMD_H_
#define VQ_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vq {
namespace simd {

/// One implementation of the kernel set. All pointers are always non-null.
///
/// Floating-point contract: every kernel computes the same mathematical sum
/// as its scalar counterpart but may reassociate additions (lane-parallel
/// accumulators) and contract multiply-adds, so results agree with the
/// scalar table to relative 1e-12 on the magnitudes this system produces --
/// never exactly. Integer kernels (or_popcount, argmax) and the values
/// stored by min_update are bit-exact.
struct Kernels {
  const char* name;  ///< "scalar", "avx2", "avx512" or "neon"

  /// covered[w] = OR over the `num_sets` bitsets of sets[s][w], for w in
  /// [0, num_words); returns the total popcount of `covered`. `sets` may be
  /// empty, in which case `covered` is zeroed.
  uint64_t (*or_popcount)(const uint64_t* const* sets, size_t num_sets,
                          size_t num_words, uint64_t* covered);

  /// Sum of block[i] over the set bits i of `mask`. The block is one 64-row
  /// bitset block: ALL 64 doubles must be readable (the avx2 lanes load past
  /// cleared bits), so callers pad their per-row arrays to a whole number of
  /// blocks -- Evaluator does. The avx512 table's fault-suppressing masked
  /// loads touch only selected lanes and would not need the padding, but the
  /// contract keeps the stricter requirement so one caller layout serves
  /// every table.
  double (*masked_sum64)(const double* block, uint64_t mask);

  /// Single-covering-fact conflict resolution over one 64-row block under
  /// the kClosest model (Definition 4 with exactly one in-scope fact): for
  /// each set bit i, the listener picks `value` or the prior, whichever lies
  /// closer to the actual target -- so the row's weighted error is
  /// min(|value - targets[i]| * weights[i], prior_dev_weighted[i]). Returns
  /// the sum over the set bits. Padding contract as masked_sum64 (targets,
  /// weights and prior_dev_weighted are block-padded arrays; padding lanes
  /// carry 0.0). The min over weighted deviations selects the same value the
  /// scalar argmin over unweighted deviations does: weights are >= 0 and
  /// rounding is monotone, so the order of the weighted pair never flips.
  double (*masked_single_fact)(double value, const double* targets,
                               const double* weights,
                               const double* prior_dev_weighted, uint64_t mask);

  /// Dense dot product: sum over i of values[i] * weights[i].
  double (*weighted_sum)(const double* values, const double* weights,
                         size_t n);

  /// Weighted absolute deviation from a constant center:
  /// sum over i of |center - values[i]| * weights[i].
  double (*weighted_abs_dev)(double center, const double* values,
                             const double* weights, size_t n);

  /// The single-fact-utility reduction (initialization join, Algorithm 1
  /// Line 6), fully dense: sum over k of max(0, current[k] - devs[k]) *
  /// weights[k]. All three arrays are CSR-aligned SoA tables, so this
  /// streams with no gather -- the reason FactCatalog materializes the
  /// prior-deviation column per scope entry.
  double (*positive_gain)(const double* current, const double* devs,
                          const double* weights, size_t n);

  /// Gathered dot product over a CSR row list:
  /// sum over k of dense[rows[k]] * weights[k].
  double (*gather_weighted_sum)(const double* dense, const uint32_t* rows,
                                const double* weights, size_t n);

  /// The utility-gain reduction (initialization join / greedy gain loops):
  /// sum over k of max(0, dense[rows[k]] - devs[k]) * weights[k].
  double (*gather_positive_gain)(const double* dense, const uint32_t* rows,
                                 const double* devs, const double* weights,
                                 size_t n);

  /// In-place min update (GreedyState::ApplyFact): for each k with
  /// devs[k] < dense[rows[k]], sets dense[rows[k]] = devs[k]; returns the
  /// weighted error reduction sum((old - devs[k]) * weights[k]) over the
  /// lowered rows. `rows` must hold distinct indices (CSR scope lists do).
  double (*min_update)(double* dense, const uint32_t* rows,
                       const double* devs, const double* weights, size_t n);

  /// Index of the maximum of values[0, n); the LOWEST index wins ties
  /// (matching the seed's strict `>` best-fact scan). Requires n > 0.
  size_t (*argmax)(const double* values, size_t n);
};

/// The dispatched kernel table: selected once at first use (see file
/// comment), constant afterwards unless a bench/test override is installed.
const Kernels& Active();

/// The scalar fallback table (always available; the correctness oracle).
const Kernels& Scalar();

/// Every table the current build + CPU can run: scalar first, then each
/// vector table the CPU supports in ascending width (avx2 before avx512).
/// Equivalence tests iterate this so one binary exercises each
/// implementation against the scalar oracle.
const std::vector<const Kernels*>& AllImplementations();

/// Lookup by name ("scalar", "avx2", "avx512", "neon"); nullptr when that
/// table is not runnable in this build/CPU.
const Kernels* ByName(const char* name);

/// True when dispatch is pinned to scalar (VQ_FORCE_SCALAR=1 in the
/// environment, or a -DVQ_FORCE_SCALAR=ON build).
bool ForcedScalar();

/// Replaces the table Active() returns (nullptr restores dispatch). For
/// benches and tests that A/B scalar vs vector end-to-end in one process;
/// install it before spawning workers -- the hot paths re-read it per call.
void SetActiveForTesting(const Kernels* kernels);

}  // namespace simd
}  // namespace vq

#endif  // VQ_UTIL_SIMD_H_
