#!/usr/bin/env python3
"""Repo synchronization lint (wired into the check_static CMake target).

Two rules, both cheap textual checks that keep the thread-safety story
honest between full static-analysis runs:

1. util/sync.h is the ONLY file under src/ that may name the raw standard
   locking primitives (std::mutex, std::lock_guard, std::unique_lock,
   std::scoped_lock, std::shared_mutex, std::condition_variable[_any]).
   Everything else must use vq::Mutex / vq::MutexLock / vq::CondVar so the
   Clang thread-safety annotations see every lock in the tree. Including
   <mutex> for non-locking utilities (std::call_once, std::once_flag) is
   fine; naming the lock types is not.

2. Every `memory_order_relaxed` use must carry a rationale: a `// relaxed:`
   comment on the same line, on one of the two lines above, or earlier in
   the same blank-line-delimited block (one rationale covers a dense run of
   counter reads). Relaxed ordering is correct only under an argument
   (monotonic counter, single-writer publish, value checked again under a
   lock, ...) and that argument belongs next to the code, where the next
   editor will see it.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

import argparse
import pathlib
import re
import sys

BANNED_TOKENS = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
]
BANNED_RE = re.compile("|".join(re.escape(t) for t in BANNED_TOKENS))
RELAXED_RE = re.compile(r"memory_order_relaxed")
RATIONALE_RE = re.compile(r"//\s*relaxed:")

# The one file allowed to wrap the std primitives.
SYNC_ALLOWLIST = {"util/sync.h"}


def strip_comments(line: str, in_block: bool) -> tuple[str, bool]:
    """Removes // and /* */ comment text from one line (no string literals
    with comment markers exist in this tree; keep it simple)."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    problems = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    block_covered = False  # a '// relaxed:' earlier in this paragraph
    for lineno, raw in enumerate(lines, start=1):
        if not raw.strip():
            block_covered = False  # rationale coverage ends at a blank line
        elif RATIONALE_RE.search(raw):
            block_covered = True
        code, in_block = strip_comments(raw, in_block)
        if rel not in SYNC_ALLOWLIST:
            match = BANNED_RE.search(code)
            if match:
                problems.append(
                    f"{rel}:{lineno}: naked {match.group(0)} -- use the "
                    "annotated wrappers in util/sync.h"
                )
        if RELAXED_RE.search(code) and not block_covered:
            window = lines[max(0, lineno - 3) : lineno]
            if not any(RATIONALE_RE.search(w) for w in window):
                problems.append(
                    f"{rel}:{lineno}: memory_order_relaxed without a "
                    "'// relaxed:' rationale (same line, two lines above, "
                    "or earlier in this paragraph)"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "root",
        nargs="?",
        default=pathlib.Path(__file__).resolve().parent.parent / "src",
        type=pathlib.Path,
        help="source tree to lint (default: <repo>/src)",
    )
    args = parser.parse_args()
    root = args.root.resolve()

    problems = []
    for path in sorted(root.rglob("*")):
        if path.suffix not in {".h", ".cc", ".cpp"}:
            continue
        rel = path.relative_to(root).as_posix()
        problems.extend(lint_file(path, rel))

    for problem in problems:
        print(problem)
    if problems:
        print(f"check_sync_lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_sync_lint: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
