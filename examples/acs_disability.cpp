// Table II scenario: best vs. worst speech for ACS visual-impairment data,
// plus the expectations each speech induces (Figure 6's setup).
#include <cstdio>

#include "core/summarizer.h"
#include "sim/studies.h"
#include "speech/speech.h"
#include "storage/datasets.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  vq::Table acs = vq::MakeAcsTable(/*rows=*/8000, /*seed=*/13);
  int visual = acs.TargetIndex("visual");

  vq::SummarizerOptions options;
  options.max_facts = 3;
  options.max_fact_dims = 2;
  auto prepared = vq::PreparedProblem::Prepare(acs, {}, visual, options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  const vq::Evaluator& evaluator = prepared.value().evaluator();

  // Rank 100 random speeches by the quality model (Section VIII-C).
  vq::Rng rng(99);
  auto ranked = vq::RandomRankedSpeeches(evaluator, 100, 3, &rng);
  const vq::RankedSpeech& worst = ranked.front();
  const vq::RankedSpeech& best_random = ranked.back();

  // The optimized speech (what the system would actually say).
  vq::SummaryResult optimized = prepared.value().Run(options);

  auto render = [&](const std::vector<vq::FactId>& facts, double utility) {
    vq::SummaryResult r;
    r.facts = facts;
    r.utility = utility;
    r.base_error = evaluator.BaseError();
    return vq::RenderSpeech(acs, prepared.value().instance(),
                            prepared.value().catalog(), r, {});
  };

  std::printf("Worst-ranked speech (of 100 random):\n  %s\n  utility %.0f\n\n",
              render(worst.facts, worst.utility).text.c_str(), worst.utility);
  std::printf("Best-ranked speech (of 100 random):\n  %s\n  utility %.0f\n\n",
              render(best_random.facts, best_random.utility).text.c_str(),
              best_random.utility);
  std::printf("Optimized speech (greedy, cost-based pruning):\n  %s\n"
              "  utility %.0f (%.0f%% of prior error removed)\n\n",
              render(optimized.facts, optimized.utility).text.c_str(),
              optimized.utility, 100.0 * optimized.ScaledUtility());

  // Expectations per (borough, age group) cell under the optimized speech.
  const vq::SummaryInstance& instance = prepared.value().instance();
  int borough_pos = -1;
  int age_pos = -1;
  for (size_t p = 0; p < instance.dim_names.size(); ++p) {
    if (instance.dim_names[p] == "borough") borough_pos = static_cast<int>(p);
    if (instance.dim_names[p] == "age_group") age_pos = static_cast<int>(p);
  }
  vq::TablePrinter cells({"borough", "age group", "actual", "expected (closest)"});
  const auto& borough_dict = acs.dict(static_cast<size_t>(acs.DimIndex("borough")));
  const auto& age_dict = acs.dict(static_cast<size_t>(acs.DimIndex("age_group")));
  for (vq::ValueId b = 0; b < borough_dict.size(); ++b) {
    for (vq::ValueId a = 0; a < age_dict.size(); ++a) {
      std::vector<std::pair<int, vq::ValueId>> cell = {{borough_pos, b}, {age_pos, a}};
      double actual = 0.0;
      if (!vq::CellAverage(instance, cell, &actual)) continue;
      auto relevant = vq::RelevantFactValues(evaluator, optimized.facts, cell);
      double expected = vq::ExpectedValue(vq::ConflictModel::kClosest, relevant, {},
                                          instance.prior, actual);
      cells.AddRow({borough_dict.Lookup(b), age_dict.Lookup(a),
                    vq::FormatCompact(actual, 1), vq::FormatCompact(expected, 1)});
    }
  }
  cells.Print("Listener expectations after the optimized speech (per 1000)");
  return 0;
}
