// Using your own data: write a CSV, load it with column roles, configure the
// engine from a JSON configuration string, and persist the speech store.
#include <cstdio>

#include "engine/preprocessor.h"
#include "storage/table.h"
#include "util/csv.h"

int main() {
  // In a real deployment this CSV comes from your pipeline; the
  // configuration would live in a .json file next to it (Section III).
  const char* kCsv =
      "city,weekday,rides,wait_minutes\n"
      "Berlin,Mon,120,7\nBerlin,Sat,300,12\nBerlin,Sun,280,11\n"
      "Munich,Mon,80,5\nMunich,Sat,200,9\nMunich,Sun,190,10\n"
      "Hamburg,Mon,60,6\nHamburg,Sat,150,8\nHamburg,Sun,140,9\n";
  const char* kConfig = R"({
    "table": "rides",
    "dimensions": ["city", "weekday"],
    "targets": ["wait_minutes"],
    "max_query_predicates": 1,
    "max_fact_dims": 2,
    "max_facts": 2,
    "prior": "global_average"
  })";

  auto csv = vq::ParseCsv(kCsv);
  if (!csv.ok()) {
    std::fprintf(stderr, "csv: %s\n", csv.status().ToString().c_str());
    return 1;
  }
  auto table = vq::Table::FromCsv(csv.value(), "rides", {"city", "weekday"},
                                  {"wait_minutes"});
  if (!table.ok()) {
    std::fprintf(stderr, "table: %s\n", table.status().ToString().c_str());
    return 1;
  }
  auto config = vq::Configuration::FromJsonText(kConfig);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }

  vq::PreprocessStats stats;
  auto store = vq::Preprocess(table.value(), config.value(), {}, &stats);
  if (!store.ok()) {
    std::fprintf(stderr, "preprocess: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("Pre-processed %zu speeches:\n\n", store.value().size());
  for (const auto& stored : store.value().speeches()) {
    std::printf("  [%s] %s\n", stored.speech.subset_description.c_str(),
                stored.speech.text.c_str());
  }

  // Persist the store as JSON (reloadable with SpeechStore::FromJson).
  std::string json = store.value().ToJson(table.value()).Dump(2);
  std::printf("\nSerialized store: %zu bytes of JSON (round-trips via "
              "SpeechStore::FromJson)\n",
              json.size());
  auto reloaded = vq::SpeechStore::FromJson(
      vq::Json::Parse(json).value(), table.value());
  std::printf("Reloaded %zu speeches.\n", reloaded.ok() ? reloaded.value().size() : 0);
  return 0;
}
