// End-to-end voice assistant: pre-processes a data set, then answers
// requests -- either those passed as command-line arguments or a scripted
// demo session mirroring the paper's public deployment (Example 5).
//
//   ./build/examples/voice_assistant                      # scripted demo
//   ./build/examples/voice_assistant "cancellations in Winter?" "help"
#include <cstdio>

#include "engine/voice_engine.h"
#include "storage/datasets.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  std::printf("Generating flight statistics and pre-processing speeches...\n");
  vq::Table flights = vq::MakeFlightsTable(/*rows=*/15000, /*seed=*/5);

  // Configuration mirroring the deployment: one target (cancellation
  // probability), queries with up to two predicates (Example 5).
  vq::Configuration config;
  config.table = "flights";
  config.dimensions = {"airline", "dest_region", "season", "month", "time_of_day"};
  config.targets = {"cancelled"};
  config.max_query_predicates = 2;
  config.max_fact_dims = 2;
  config.max_facts = 3;

  vq::ThreadPool pool;
  vq::PreprocessOptions options;
  options.pool = &pool;
  vq::PreprocessStats stats;
  auto engine = vq::VoiceQueryEngine::Build(&flights, config, options, &stats);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("Pre-processed %zu speeches in %.1f s (%.2f ms per speech, "
              "mean scaled utility %.2f)\n\n",
              stats.num_speeches, stats.total_seconds,
              1e3 * stats.total_seconds / static_cast<double>(stats.num_speeches),
              stats.MeanScaledUtility());

  // Register the phrases users say for the target column.
  (void)engine.value().mutable_extractor()->AddTargetSynonym("cancellations",
                                                             "cancelled");
  (void)engine.value().mutable_extractor()->AddTargetSynonym("cancellation rate",
                                                             "cancelled");

  std::vector<std::string> requests;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) requests.emplace_back(argv[i]);
  } else {
    requests = {
        "help",
        "cancellations in Winter?",           // Example 5's logged query
        "cancellations in February",
        "cancellations for AL-1 in the West",
        "repeat that",
        "which month has the most cancellations",  // unsupported: extremum
        "thanks",
    };
  }

  for (const std::string& request : requests) {
    auto response = engine.value().Answer(request);
    std::printf("User  : %s\n", request.c_str());
    std::printf("System: %s\n", response.text.c_str());
    std::printf("        [%s, lookup %.3f ms]\n\n",
                vq::RequestTypeName(response.type),
                response.lookup_seconds * 1e3);
  }
  return 0;
}
