// Quickstart: summarize one voice query over a synthetic flights table.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/summarizer.h"
#include "speech/speech.h"
#include "storage/datasets.h"

int main() {
  // 1. Load data. Any vq::Table works; here we generate the synthetic
  //    flight-statistics data set (6 dimensions, 2 targets).
  vq::Table flights = vq::MakeFlightsTable(/*rows=*/20000, /*seed=*/7);

  // 2. Describe the query: "cancellations in Winter?".
  vq::PredicateSet predicates = {
      vq::MakePredicate(flights, "season", "Winter").value()};
  int target = flights.TargetIndex("cancelled");

  // 3. Pick the algorithm and limits: three facts per speech, facts may add
  //    up to two dimension predicates, greedy with cost-based fact pruning.
  vq::SummarizerOptions options;
  options.max_facts = 3;
  options.max_fact_dims = 2;
  options.algorithm = vq::Algorithm::kGreedyOptimized;

  // 4. Summarize.
  auto prepared =
      vq::PreparedProblem::Prepare(flights, predicates, target, options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  vq::SummaryResult result = prepared.value().Run(options);

  // 5. Render the speech.
  vq::Speech speech =
      vq::RenderSpeech(flights, prepared.value().instance(),
                       prepared.value().catalog(), result, predicates);
  std::printf("Query   : cancellations where season=Winter\n");
  std::printf("Speech  : %s\n", speech.text.c_str());
  std::printf("Utility : %.1f (%.0f%% of the prior error removed)\n",
               result.utility, 100.0 * result.ScaledUtility());
  std::printf("Solved in %.2f ms over %zu rows and %zu candidate facts\n",
               result.elapsed_seconds * 1e3, prepared.value().instance().num_rows,
               prepared.value().catalog().NumFacts());
  return 0;
}
