// The paper's running example (Figure 1): airplane delays by region and
// season, exact vs. greedy summaries, and the worked utilities of
// Examples 4-8.
#include <cstdio>

#include "core/exact.h"
#include "core/greedy.h"
#include "facts/catalog.h"
#include "facts/instance.h"
#include "speech/speech.h"
#include "storage/datasets.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  vq::Table table = vq::MakeRunningExampleTable();

  // Print the delay matrix (Figure 1, left plot).
  vq::TablePrinter matrix({"season \\ region", "East", "South", "West", "North"});
  for (const std::string season : {"Spring", "Summer", "Fall", "Winter"}) {
    std::vector<std::string> row = {season};
    for (const std::string region : {"East", "South", "West", "North"}) {
      for (size_t r = 0; r < table.NumRows(); ++r) {
        if (table.DimValue(r, 0) == region && table.DimValue(r, 1) == season) {
          row.push_back(vq::FormatCompact(table.TargetValue(r, 0)));
        }
      }
    }
    matrix.AddRow(row);
  }
  matrix.Print("Average delay (minutes) by region and season -- Figure 1");

  // Users expect no delays by default (Example 3's prior).
  vq::InstanceOptions instance_options;
  instance_options.prior_kind = vq::PriorKind::kZero;
  vq::SummaryInstance instance =
      vq::BuildInstance(table, {}, 0, instance_options).value();
  // Facts describe "flights within a specific region or season or both".
  vq::FactCatalog catalog = vq::FactCatalog::Build(instance, 2, 1).value();
  vq::Evaluator evaluator(&instance, &catalog);

  std::printf("Accumulated error with no speech, D(empty) = %.0f (Example 4)\n\n",
              evaluator.BaseError());

  // Greedy (Algorithm 2).
  vq::GreedyOptions greedy_options;
  greedy_options.max_facts = 2;
  vq::SummaryResult greedy = vq::GreedySummary(evaluator, greedy_options);
  vq::Speech greedy_speech =
      vq::RenderSpeech(table, instance, catalog, greedy, {});
  std::printf("Greedy speech : %s\n", greedy_speech.text.c_str());
  std::printf("  utility %.0f, residual error %.0f (Example 7: 40 + 25)\n\n",
              greedy.utility, greedy.error);

  // Exact (Algorithm 1).
  vq::ExactOptions exact_options;
  exact_options.max_facts = 2;
  vq::SummaryResult exact = vq::ExactSummary(evaluator, exact_options);
  vq::Speech exact_speech = vq::RenderSpeech(table, instance, catalog, exact, {});
  std::printf("Exact speech  : %s\n", exact_speech.text.c_str());
  std::printf("  utility %.0f after %llu node expansions, %llu bound prunes\n",
              exact.utility,
              static_cast<unsigned long long>(exact.counters.nodes_expanded),
              static_cast<unsigned long long>(exact.counters.pruned_by_bound));
  return 0;
}
